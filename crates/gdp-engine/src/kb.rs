//! The clause store.
//!
//! A [`KnowledgeBase`] holds Horn clauses grouped by predicate, with three
//! features the formalism leans on heavily:
//!
//! * **Multi-argument indexing.** Roman's prototype accepted "Prolog's
//!   computational inefficiency" (§I); reified facts make every fact a
//!   `holds/5` clause whose *first* argument (the model) is almost always
//!   the same atom, so classic first-argument indexing degenerates to a
//!   scan. A predicate can therefore be indexed on several argument
//!   positions ([`KnowledgeBase::set_index_args`]); each call picks the
//!   most selective index for its (dereferenced) arguments. List-valued
//!   arguments are keyed by their first element, which is what makes the
//!   reified `h(M, S, T, Pred, [Obj | …])` representation discriminate on
//!   the object. Indexing can be disabled wholesale
//!   ([`KnowledgeBase::set_indexing`]) to act as the 1986-Prolog baseline
//!   in benchmarks.
//!
//! * **Clause groups.** Meta-models "may be activated on demand" (§IV.C):
//!   each clause belongs to a named [`GroupId`], and a whole group can be
//!   retracted in one call. Activating a meta-model asserts its rule pack
//!   under its group; deactivating retracts the group.
//!
//! * **Native predicates** — semi-determinate Rust callbacks used for
//!   semantic-domain operations the paper treats as given (distance
//!   functions, resolution functions, interpolation, …).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::delta::{Delta, DeltaOp};
use crate::deps::{ArgSpec, DepGraph};
use crate::error::{EngineError, EngineResult};
use crate::hash::{FxHashMap, FxHashSet};
use crate::symbol::{symbols, Sym};
use crate::table::{AnswerTable, TableValidity};
use crate::term::{Term, F64};
use crate::unify::BindStore;

/// Identifies a predicate: functor plus arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredKey {
    /// Functor symbol.
    pub name: Sym,
    /// Number of arguments.
    pub arity: u16,
}

impl PredKey {
    /// Largest arity a predicate key can represent. Arities beyond this
    /// are rejected (never silently truncated — a `p/65537` call must not
    /// dispatch to `p/1` clauses).
    pub const MAX_ARITY: usize = u16::MAX as usize;

    /// Build a key from a functor name and arity.
    ///
    /// # Panics
    ///
    /// Panics when `arity` exceeds [`PredKey::MAX_ARITY`]; use
    /// [`PredKey::try_new`] when the arity is not statically known to be
    /// small.
    pub fn new(name: &str, arity: usize) -> PredKey {
        PredKey::try_new(name, arity)
            .unwrap_or_else(|| panic!("predicate arity {arity} exceeds {}", PredKey::MAX_ARITY))
    }

    /// Build a key from a functor name and arity, or `None` when the arity
    /// exceeds [`PredKey::MAX_ARITY`].
    pub fn try_new(name: &str, arity: usize) -> Option<PredKey> {
        Some(PredKey {
            name: Sym::new(name),
            arity: u16::try_from(arity).ok()?,
        })
    }

    /// Key describing a callable term (atom or compound). `None` for
    /// non-callable terms and for compounds whose arity exceeds
    /// [`PredKey::MAX_ARITY`].
    pub fn of_term(t: &Term) -> Option<PredKey> {
        Some(PredKey {
            name: t.functor()?,
            arity: u16::try_from(t.arity()?).ok()?,
        })
    }
}

/// A named clause group. Groups are the engine-level mechanism behind the
/// paper's models and meta-models: rule packs that can be asserted and
/// retracted as a unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(Sym);

impl GroupId {
    /// Group with the given name.
    pub fn named(name: &str) -> GroupId {
        GroupId(Sym::new(name))
    }

    /// The default group for clauses asserted without an explicit group.
    /// Named after the paper's default model ω (§III.D).
    pub fn root() -> GroupId {
        GroupId(Sym::new("omega"))
    }

    /// The group's name.
    pub fn name(self) -> Sym {
        self.0
    }
}

/// A stored Horn clause `head :- body`, with variables numbered `0..n_vars`.
#[derive(Clone, Debug)]
pub struct Clause {
    /// Clause head (an atom or compound term).
    pub head: Term,
    /// Clause body; `true` for facts.
    pub body: Term,
    /// Number of distinct variables; the solver allocates this many fresh
    /// slots when activating the clause.
    pub n_vars: u32,
    /// The group this clause belongs to.
    pub group: GroupId,
}

impl Clause {
    /// Build a clause, computing `n_vars` from the head and body.
    ///
    /// Variables must be densely numbered starting at zero for the slot
    /// allocation to be tight; sparse numbering is still correct, merely
    /// wasteful, so it is accepted.
    pub fn new(head: Term, body: Term, group: GroupId) -> Clause {
        let n_vars = head
            .max_var()
            .into_iter()
            .chain(body.max_var())
            .max()
            .map_or(0, |m| m + 1);
        Clause {
            head,
            body,
            n_vars,
            group,
        }
    }
}

/// Index key for one argument position of a clause head.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ArgKey {
    Atom(Sym),
    Int(i64),
    Float(F64),
    Str(Arc<str>),
    /// Non-list compounds are indexed by functor/arity only. The arity is
    /// kept at full width — unlike [`PredKey`], an index key has no
    /// representation limit to enforce, and truncating here would be an
    /// avoidable (if sound: candidates are filtered by head unification)
    /// over-approximation.
    Functor(Sym, usize),
    /// Lists are indexed by their first element — the discriminating
    /// position in the reified `[value/object | …]` argument lists.
    ListHead(Box<ArgKey>),
}

impl ArgKey {
    /// Key for a clause-head argument. `None` for variables and for lists
    /// whose head is a variable (such clauses match any call).
    fn of(t: &Term) -> Option<ArgKey> {
        match t {
            Term::Var(_) => None,
            Term::Atom(s) => Some(ArgKey::Atom(*s)),
            Term::Int(i) => Some(ArgKey::Int(*i)),
            Term::Float(f) => Some(ArgKey::Float(*f)),
            Term::Str(s) => Some(ArgKey::Str(s.clone())),
            Term::Compound(f, args) => {
                if *f == symbols::cons() && args.len() == 2 {
                    Some(ArgKey::ListHead(Box::new(ArgKey::of(&args[0])?)))
                } else {
                    Some(ArgKey::Functor(*f, args.len()))
                }
            }
        }
    }

    /// Key for a *call* argument, following bindings one level deep (and
    /// through the list head).
    fn of_call(store: &BindStore, t: &Term) -> Option<ArgKey> {
        match store.deref(t) {
            Term::Var(_) => None,
            Term::Atom(s) => Some(ArgKey::Atom(*s)),
            Term::Int(i) => Some(ArgKey::Int(*i)),
            Term::Float(f) => Some(ArgKey::Float(*f)),
            Term::Str(s) => Some(ArgKey::Str(s.clone())),
            Term::Compound(f, args) => {
                if *f == symbols::cons() && args.len() == 2 {
                    Some(ArgKey::ListHead(Box::new(ArgKey::of_call(
                        store, &args[0],
                    )?)))
                } else {
                    Some(ArgKey::Functor(*f, args.len()))
                }
            }
        }
    }
}

/// One per-argument-position index.
#[derive(Default)]
struct ArgIndex {
    pos: u16,
    by_key: FxHashMap<ArgKey, Vec<u32>>,
    /// Positions of clauses whose argument at `pos` carries no key.
    var_clauses: Vec<u32>,
}

impl ArgIndex {
    fn insert(&mut self, clause_pos: u32, head: &Term) {
        match head.args().get(self.pos as usize).and_then(ArgKey::of) {
            Some(key) => self.by_key.entry(key).or_default().push(clause_pos),
            None => self.var_clauses.push(clause_pos),
        }
    }
}

#[derive(Default)]
struct PredEntry {
    clauses: Vec<Arc<Clause>>,
    indexes: Vec<ArgIndex>,
}

impl PredEntry {
    fn new(index_positions: &[u16]) -> PredEntry {
        PredEntry {
            clauses: Vec::new(),
            indexes: index_positions
                .iter()
                .map(|&pos| ArgIndex {
                    pos,
                    ..ArgIndex::default()
                })
                .collect(),
        }
    }

    fn rebuild_indexes(&mut self) {
        for index in &mut self.indexes {
            index.by_key.clear();
            index.var_clauses.clear();
        }
        for (pos, clause) in self.clauses.iter().enumerate() {
            for index in &mut self.indexes {
                index.insert(pos as u32, &clause.head);
            }
        }
    }

    fn push(&mut self, clause: Arc<Clause>) {
        let pos = self.clauses.len() as u32;
        for index in &mut self.indexes {
            index.insert(pos, &clause.head);
        }
        self.clauses.push(clause);
    }
}

/// Result type a native predicate reports: `true` = succeed (bindings made
/// through the store stay), `false` = fail.
pub type NativeOutcome = EngineResult<bool>;

/// A semi-determinate native predicate: receives the bind store and the raw
/// (un-dereferenced) call arguments; may bind variables via
/// [`BindStore::unify`]; succeeds at most once.
pub type NativeFn = Arc<dyn Fn(&mut BindStore, &[Term]) -> NativeOutcome + Send + Sync>;

/// Lazily built dependency information, cleared on every epoch bump.
#[derive(Default)]
struct DepCache {
    graph: Option<Arc<DepGraph>>,
    snapshots: FxHashMap<PredKey, Arc<TableValidity>>,
}

/// The clause store. See the module docs.
pub struct KnowledgeBase {
    preds: FxHashMap<PredKey, PredEntry>,
    natives: FxHashMap<PredKey, NativeFn>,
    /// Index positions configured per predicate before/after its entry
    /// exists; default is first-argument indexing.
    index_config: FxHashMap<PredKey, Vec<u16>>,
    indexing: bool,
    strict: bool,
    clause_count: usize,
    /// Modification counter: bumped by every operation that can change
    /// what is derivable. Cached table entries carry the epoch they were
    /// built at and are dropped on mismatch.
    epoch: u64,
    /// Master switch for tabled resolution (off by default).
    tabling_enabled: bool,
    /// Table every user predicate, not just the marked ones.
    table_all: bool,
    /// Predicates opted into tabling.
    tabled: FxHashSet<PredKey>,
    /// The memoized answer cache shared by all solvers over this KB.
    table: AnswerTable,
    /// Per-predicate generation counters: bumped whenever that predicate's
    /// clauses or native implementation change. Predicates never touched
    /// are implicitly at generation 0. Table entries survive an epoch bump
    /// when every generation in their dependency closure is unchanged.
    generations: FxHashMap<PredKey, u64>,
    /// Structural-configuration generation: indexing on/off, per-predicate
    /// index layout, strict mode. These change solution order or error
    /// behavior without touching clauses, so they invalidate independently
    /// of the per-predicate counters.
    structural_gen: u64,
    /// Active delta recorder; `Some` while a transaction (or the rolling
    /// incremental-audit recorder) is collecting mutations.
    recorder: Option<Delta>,
    /// Lazily built dependency graph and per-predicate validity snapshots.
    dep_cache: Mutex<DepCache>,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        KnowledgeBase::new()
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("predicates", &self.preds.len())
            .field("clauses", &self.clause_count)
            .field("natives", &self.natives.len())
            .field("indexing", &self.indexing)
            .field("strict", &self.strict)
            .field("epoch", &self.epoch)
            .field("tabling", &self.tabling_enabled)
            .finish()
    }
}

impl KnowledgeBase {
    /// Empty knowledge base with indexing on and open-world (non-strict)
    /// call semantics.
    pub fn new() -> KnowledgeBase {
        KnowledgeBase {
            preds: FxHashMap::default(),
            natives: FxHashMap::default(),
            index_config: FxHashMap::default(),
            indexing: true,
            strict: false,
            clause_count: 0,
            epoch: 0,
            tabling_enabled: false,
            table_all: false,
            tabled: FxHashSet::default(),
            table: AnswerTable::new(),
            generations: FxHashMap::default(),
            structural_gen: 0,
            recorder: None,
            dep_cache: Mutex::new(DepCache::default()),
        }
    }

    /// Record a change that can affect what is derivable: advance the
    /// epoch and drop the cached dependency graph and validity snapshots.
    /// Table entries built against an older epoch survive only if their
    /// recorded dependency generations still match (see
    /// [`crate::table::TableValidity`]).
    fn bump_epoch(&mut self) {
        self.epoch += 1;
        let cache = self.dep_cache.get_mut();
        cache.graph = None;
        cache.snapshots.clear();
    }

    /// Record a change confined to one predicate's clauses (or native):
    /// advance its generation, then the epoch.
    fn bump_pred(&mut self, key: PredKey) {
        *self.generations.entry(key).or_insert(0) += 1;
        self.bump_epoch();
    }

    /// Record a structural-configuration change (indexing, index layout,
    /// strict mode): advance the structural generation, then the epoch.
    fn bump_structural(&mut self) {
        self.structural_gen += 1;
        self.bump_epoch();
    }

    /// The current modification epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The generation counter of one predicate (0 if never mutated).
    pub fn generation(&self, key: PredKey) -> u64 {
        self.generations.get(&key).copied().unwrap_or(0)
    }

    /// The structural-configuration generation.
    pub fn structural_generation(&self) -> u64 {
        self.structural_gen
    }

    // ----- tabling ----------------------------------------------------------

    /// Master switch for tabled resolution. Off by default; turning it on
    /// makes the solver consult the answer table for predicates marked via
    /// [`KnowledgeBase::mark_tabled`] (or all of them under
    /// [`KnowledgeBase::set_table_all`]).
    pub fn set_tabling(&mut self, on: bool) {
        if self.tabling_enabled == on {
            return;
        }
        self.tabling_enabled = on;
    }

    /// Whether tabled resolution is enabled.
    pub fn tabling_enabled(&self) -> bool {
        self.tabling_enabled
    }

    /// Table every user predicate instead of only the marked ones (still
    /// gated on [`KnowledgeBase::set_tabling`]).
    pub fn set_table_all(&mut self, on: bool) {
        if self.table_all == on {
            return;
        }
        self.table_all = on;
    }

    /// Whether all user predicates are tabled.
    pub fn table_all(&self) -> bool {
        self.table_all
    }

    /// Opt one predicate into tabling. Marking is independent of the
    /// master switch, so meta-models can mark their expensive predicates
    /// unconditionally and the user decides with
    /// [`KnowledgeBase::set_tabling`].
    pub fn mark_tabled(&mut self, key: PredKey) {
        self.tabled.insert(key);
    }

    /// Should calls to this predicate go through the answer table?
    pub fn is_tabled(&self, key: PredKey) -> bool {
        self.tabling_enabled && (self.table_all || self.tabled.contains(&key))
    }

    /// The shared answer table (diagnostics and the solver).
    pub fn table(&self) -> &AnswerTable {
        &self.table
    }

    /// Enable/disable argument indexing. With indexing off, every call
    /// scans all clauses of the predicate — the 1986 baseline used by
    /// `bench_indexing`.
    pub fn set_indexing(&mut self, on: bool) {
        if self.indexing == on {
            return;
        }
        self.indexing = on;
        self.bump_structural();
    }

    /// Whether argument indexing is enabled.
    pub fn indexing(&self) -> bool {
        self.indexing
    }

    /// Configure which argument positions of `key` are indexed. Each call
    /// consults every configured index and follows the most selective one.
    /// The default is `[0]` (classic first-argument indexing). Positions
    /// beyond the predicate's arity are ignored.
    pub fn set_index_args(&mut self, key: PredKey, positions: &[usize]) {
        let positions: Vec<u16> = positions
            .iter()
            .filter(|&&p| p < key.arity as usize)
            .map(|&p| p as u16)
            .collect();
        if self.index_positions(key) == positions {
            return;
        }
        self.index_config.insert(key, positions.clone());
        if let Some(entry) = self.preds.get_mut(&key) {
            entry.indexes = positions
                .iter()
                .map(|&pos| ArgIndex {
                    pos,
                    ..ArgIndex::default()
                })
                .collect();
            entry.rebuild_indexes();
        }
        self.bump_structural();
    }

    fn index_positions(&self, key: PredKey) -> Vec<u16> {
        self.index_config.get(&key).cloned().unwrap_or_else(|| {
            if key.arity > 0 {
                vec![0]
            } else {
                Vec::new()
            }
        })
    }

    /// In strict mode, calling a predicate with no clauses and no native
    /// implementation is an error; in the default open-world mode it simply
    /// fails (the fact is "undefined", §III.A).
    pub fn set_strict(&mut self, on: bool) {
        if self.strict == on {
            return;
        }
        self.strict = on;
        self.bump_structural();
    }

    /// Whether strict unknown-predicate mode is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Total number of stored clauses.
    pub fn clause_count(&self) -> usize {
        self.clause_count
    }

    /// Number of predicates with at least one clause.
    pub fn predicate_count(&self) -> usize {
        self.preds.len()
    }

    /// Assert a ground or universally quantified fact into the root group.
    pub fn assert_fact(&mut self, head: Term) {
        self.assert_clause_in(GroupId::root(), head, Term::atom("true"));
    }

    /// Assert `head :- body` into the root group.
    pub fn assert_clause(&mut self, head: Term, body: Term) {
        self.assert_clause_in(GroupId::root(), head, body);
    }

    /// Assert `head :- body` into `group`.
    ///
    /// # Panics
    ///
    /// Panics when the head is not callable or its arity exceeds
    /// [`PredKey::MAX_ARITY`]; use
    /// [`KnowledgeBase::try_assert_clause_in`] when the clause comes from
    /// untrusted input (a loader, the REPL).
    pub fn assert_clause_in(&mut self, group: GroupId, head: Term, body: Term) {
        if let Err(e) = self.try_assert_clause_in(group, head, body) {
            panic!("{e}");
        }
    }

    /// Assert `head :- body` into `group`, reporting an uncallable or
    /// oversized head as an error instead of panicking.
    pub fn try_assert_clause_in(
        &mut self,
        group: GroupId,
        head: Term,
        body: Term,
    ) -> EngineResult<()> {
        let Some(key) = PredKey::of_term(&head) else {
            return Err(match (head.functor(), head.arity()) {
                // Callable shape, but the arity doesn't fit a PredKey.
                (Some(name), Some(arity)) => EngineError::ArityOverflow { name, arity },
                _ => EngineError::UncallableHead { head },
            });
        };
        let clause = Arc::new(Clause::new(head, body, group));
        let positions = self.index_positions(key);
        self.preds
            .entry(key)
            .or_insert_with(|| PredEntry::new(&positions))
            .push(Arc::clone(&clause));
        self.clause_count += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(DeltaOp::Assert { key, clause });
        }
        self.bump_pred(key);
        Ok(())
    }

    /// Retract every clause belonging to `group`, across all predicates.
    /// Returns the number of clauses removed.
    pub fn retract_group(&mut self, group: GroupId) -> usize {
        let mut removed: Vec<(PredKey, usize, Arc<Clause>)> = Vec::new();
        for (key, entry) in self.preds.iter_mut() {
            let before = removed.len();
            for (pos, clause) in entry.clauses.iter().enumerate() {
                if clause.group == group {
                    removed.push((*key, pos, Arc::clone(clause)));
                }
            }
            if removed.len() != before {
                entry.clauses.retain(|c| c.group != group);
                entry.rebuild_indexes();
            }
        }
        self.preds.retain(|_, e| !e.clauses.is_empty());
        let n = removed.len();
        self.clause_count -= n;
        if n > 0 {
            let touched: FxHashSet<PredKey> = removed.iter().map(|(k, _, _)| *k).collect();
            if let Some(rec) = self.recorder.as_mut() {
                rec.push(DeltaOp::RetractGroup { group, removed });
            }
            for key in touched {
                *self.generations.entry(key).or_insert(0) += 1;
            }
            self.bump_epoch();
        }
        n
    }

    /// Retract the first stored *fact* (clause with body `true`) whose
    /// head is structurally equal to `head`. Returns whether one was
    /// removed. This is the engine-level support for withdrawing a basic
    /// fact when the data it recorded is revised.
    pub fn retract_fact(&mut self, head: &Term) -> bool {
        let Some(key) = PredKey::of_term(head) else {
            return false;
        };
        let Some(entry) = self.preds.get_mut(&key) else {
            return false;
        };
        let truth = Term::atom("true");
        let Some(pos) = entry
            .clauses
            .iter()
            .position(|c| c.body == truth && c.head == *head)
        else {
            return false;
        };
        let clause = entry.clauses.remove(pos);
        entry.rebuild_indexes();
        if entry.clauses.is_empty() {
            self.preds.remove(&key);
        }
        self.clause_count -= 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(DeltaOp::RetractFact { key, pos, clause });
        }
        self.bump_pred(key);
        true
    }

    /// Retract all clauses of one predicate; returns how many were removed.
    pub fn retract_predicate(&mut self, key: PredKey) -> usize {
        match self.preds.remove(&key) {
            Some(entry) => {
                let n = entry.clauses.len();
                self.clause_count -= n;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(DeltaOp::RetractPredicate {
                        key,
                        clauses: entry.clauses,
                    });
                }
                self.bump_pred(key);
                n
            }
            None => 0,
        }
    }

    /// Does this group currently have any clauses?
    pub fn group_active(&self, group: GroupId) -> bool {
        self.preds
            .values()
            .any(|e| e.clauses.iter().any(|c| c.group == group))
    }

    // ----- transactions & deltas -------------------------------------------

    /// Start recording mutations into a [`Delta`]. Idempotent: if a
    /// recorder is already active, the existing log keeps accumulating
    /// (transaction marks are positions into it, see
    /// [`KnowledgeBase::delta_len`]).
    pub fn begin_delta(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(Delta::new());
        }
    }

    /// Is a delta recorder active?
    pub fn recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Number of operations recorded so far (0 when not recording). Use as
    /// a transaction mark for [`KnowledgeBase::delta_since`] /
    /// [`KnowledgeBase::rollback_to`].
    pub fn delta_len(&self) -> usize {
        self.recorder.as_ref().map_or(0, Delta::len)
    }

    /// The operations recorded since `mark` (a previous
    /// [`KnowledgeBase::delta_len`]), as a standalone [`Delta`]. The
    /// recorder keeps running.
    pub fn delta_since(&self, mark: usize) -> Delta {
        self.recorder
            .as_ref()
            .map(|d| d.tail_from(mark))
            .unwrap_or_default()
    }

    /// Take everything recorded so far, leaving the recorder running and
    /// empty (the rolling-recorder mode the incremental audit uses).
    pub fn drain_delta(&mut self) -> Delta {
        self.recorder
            .as_mut()
            .map(Delta::drain_ops)
            .unwrap_or_default()
    }

    /// Stop recording and return the accumulated delta (`None` if no
    /// recorder was active).
    pub fn end_delta(&mut self) -> Option<Delta> {
        self.recorder.take()
    }

    /// Undo every recorded operation past `mark`, newest first, restoring
    /// the exact prior clause store (including clause positions — solution
    /// order is observable). Returns the number of operations undone. The
    /// recorder stays active, truncated to `mark`. Generations of the
    /// touched predicates are bumped, never restored: table entries built
    /// *during* the rolled-back window must not come back to life.
    pub fn rollback_to(&mut self, mark: usize) -> usize {
        let Some(mut rec) = self.recorder.take() else {
            return 0;
        };
        let mut touched: FxHashSet<PredKey> = FxHashSet::default();
        let mut undone = 0;
        while rec.len() > mark {
            let Some(op) = rec.pop() else {
                break;
            };
            undone += 1;
            match op {
                DeltaOp::Assert { key, .. } => {
                    touched.insert(key);
                    if let Some(entry) = self.preds.get_mut(&key) {
                        entry.clauses.pop();
                        entry.rebuild_indexes();
                        if entry.clauses.is_empty() {
                            self.preds.remove(&key);
                        }
                        self.clause_count -= 1;
                    }
                }
                DeltaOp::RetractFact { key, pos, clause } => {
                    touched.insert(key);
                    self.insert_clause_at(key, pos, clause);
                }
                DeltaOp::RetractGroup { removed, .. } => {
                    // Positions ascend per predicate, so reinserting in
                    // recorded order restores the original interleaving.
                    for (key, pos, clause) in removed {
                        touched.insert(key);
                        self.insert_clause_at(key, pos, clause);
                    }
                }
                DeltaOp::RetractPredicate { key, clauses } => {
                    touched.insert(key);
                    for (pos, clause) in clauses.into_iter().enumerate() {
                        self.insert_clause_at(key, pos, clause);
                    }
                }
            }
        }
        self.recorder = Some(rec);
        if undone > 0 {
            for key in touched {
                *self.generations.entry(key).or_insert(0) += 1;
            }
            self.bump_epoch();
        }
        undone
    }

    /// Reinsert a clause at a recorded position (rollback support).
    fn insert_clause_at(&mut self, key: PredKey, pos: usize, clause: Arc<Clause>) {
        let positions = self.index_positions(key);
        let entry = self
            .preds
            .entry(key)
            .or_insert_with(|| PredEntry::new(&positions));
        let pos = pos.min(entry.clauses.len());
        entry.clauses.insert(pos, clause);
        entry.rebuild_indexes();
        self.clause_count += 1;
    }

    // ----- dependency snapshots --------------------------------------------

    /// The static dependency graph of the current clauses. Built lazily
    /// and cached until the next mutation.
    pub fn dep_graph(&self) -> Arc<DepGraph> {
        let mut cache = self.dep_cache.lock();
        if let Some(graph) = &cache.graph {
            return Arc::clone(graph);
        }
        let graph = Arc::new(DepGraph::build(self));
        cache.graph = Some(Arc::clone(&graph));
        graph
    }

    /// The validity snapshot a table entry for `key` should be built
    /// against (and checked against on lookup): the current epoch plus the
    /// generations of every predicate in `key`'s static dependency
    /// closure. Cached per predicate until the next mutation.
    pub fn dep_snapshot(&self, key: PredKey) -> Arc<TableValidity> {
        if let Some(snap) = self.dep_cache.lock().snapshots.get(&key) {
            return Arc::clone(snap);
        }
        let graph = self.dep_graph();
        let closure = graph.closure(key, ArgSpec::Any);
        let snap = if closure.dynamic() {
            Arc::new(TableValidity::epoch_only(self.epoch))
        } else {
            let mut deps: Vec<(PredKey, u64)> =
                closure.preds().map(|k| (k, self.generation(k))).collect();
            deps.sort_by_key(|(k, _)| (k.name, k.arity));
            Arc::new(TableValidity {
                epoch: self.epoch,
                structural: self.structural_gen,
                dynamic: false,
                deps: Arc::new(deps),
            })
        };
        self.dep_cache
            .lock()
            .snapshots
            .insert(key, Arc::clone(&snap));
        snap
    }

    /// Register a native predicate. Natives shadow clauses: if a predicate
    /// has a native implementation, its clauses (if any) are ignored.
    pub fn register_native(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&mut BindStore, &[Term]) -> NativeOutcome + Send + Sync + 'static,
    ) {
        let key = PredKey::new(name, arity);
        self.natives.insert(key, Arc::new(f));
        self.bump_pred(key);
    }

    /// Look up a native implementation.
    pub fn native(&self, key: PredKey) -> Option<&NativeFn> {
        self.natives.get(&key)
    }

    /// Does the predicate have clauses or a native implementation?
    pub fn defined(&self, key: PredKey) -> bool {
        self.natives.contains_key(&key) || self.preds.contains_key(&key)
    }

    /// Candidate clauses for a call, in assertion order.
    ///
    /// With indexing enabled, every configured index whose call argument is
    /// bound is consulted and the most selective one wins; otherwise (or
    /// with indexing off) all clauses of the predicate are returned.
    pub fn candidates(&self, key: PredKey, store: &BindStore, args: &[Term]) -> Vec<Arc<Clause>> {
        let Some(entry) = self.preds.get(&key) else {
            return Vec::new();
        };
        if !self.indexing {
            return entry.clauses.clone();
        }
        // Pick the most selective applicable index.
        let mut best: Option<(&[u32], &[u32])> = None;
        for index in &entry.indexes {
            let Some(arg) = args.get(index.pos as usize) else {
                continue;
            };
            let Some(k) = ArgKey::of_call(store, arg) else {
                continue;
            };
            let keyed = index.by_key.get(&k).map(Vec::as_slice).unwrap_or(&[]);
            let vars = index.var_clauses.as_slice();
            let size = keyed.len() + vars.len();
            if best.is_none_or(|(bk, bv)| size < bk.len() + bv.len()) {
                best = Some((keyed, vars));
            }
        }
        match best {
            None => entry.clauses.clone(),
            Some((keyed, vars)) => {
                // Merge the two sorted position lists to preserve assertion
                // order (clause-selection order is observable through
                // solution order).
                let mut out = Vec::with_capacity(keyed.len() + vars.len());
                let (mut i, mut j) = (0, 0);
                while i < keyed.len() || j < vars.len() {
                    let next = match (keyed.get(i), vars.get(j)) {
                        (Some(&a), Some(&b)) => {
                            if a < b {
                                i += 1;
                                a
                            } else {
                                j += 1;
                                b
                            }
                        }
                        (Some(&a), None) => {
                            i += 1;
                            a
                        }
                        (None, Some(&b)) => {
                            j += 1;
                            b
                        }
                        (None, None) => unreachable!(),
                    };
                    out.push(Arc::clone(&entry.clauses[next as usize]));
                }
                out
            }
        }
    }

    /// All clauses of a predicate, in assertion order (diagnostics, tests).
    pub fn clauses_of(&self, key: PredKey) -> Vec<Arc<Clause>> {
        self.preds
            .get(&key)
            .map(|e| e.clauses.clone())
            .unwrap_or_default()
    }

    /// Iterate over every `(PredKey, clause)` pair (diagnostics).
    pub fn iter_clauses(&self) -> impl Iterator<Item = (PredKey, &Arc<Clause>)> + '_ {
        self.preds
            .iter()
            .flat_map(|(k, e)| e.clauses.iter().map(move |c| (*k, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(name: &str, args: Vec<Term>) -> Term {
        Term::pred(name, args)
    }

    fn cands(kb: &KnowledgeBase, key: PredKey, args: Vec<Term>) -> Vec<Arc<Clause>> {
        kb.candidates(key, &BindStore::new(), &args)
    }

    #[test]
    fn assert_and_count() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("road", vec![Term::atom("s1")]));
        kb.assert_fact(fact("road", vec![Term::atom("s2")]));
        assert_eq!(kb.clause_count(), 2);
        assert_eq!(kb.predicate_count(), 1);
    }

    #[test]
    fn candidates_filtered_by_first_arg() {
        let mut kb = KnowledgeBase::new();
        for i in 0..100 {
            kb.assert_fact(fact("road", vec![Term::atom(&format!("s{i}"))]));
        }
        let key = PredKey::new("road", 1);
        assert_eq!(cands(&kb, key, vec![Term::atom("s42")]).len(), 1);
        assert_eq!(cands(&kb, key, vec![Term::var(0)]).len(), 100);
    }

    #[test]
    fn var_headed_clauses_always_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        kb.assert_clause(fact("p", vec![Term::var(0)]), Term::atom("true"));
        kb.assert_fact(fact("p", vec![Term::atom("b")]));
        let got = cands(&kb, PredKey::new("p", 1), vec![Term::atom("b")]);
        // The var-headed clause and the `b` clause, in assertion order.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].head.args()[0], Term::var(0));
        assert_eq!(got[1].head.args()[0], Term::atom("b"));
    }

    #[test]
    fn unindexed_returns_everything() {
        let mut kb = KnowledgeBase::new();
        kb.set_indexing(false);
        for i in 0..10 {
            kb.assert_fact(fact("p", vec![Term::int(i)]));
        }
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(3)]).len(),
            10
        );
    }

    #[test]
    fn compound_first_arg_indexed_by_functor() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("h", vec![Term::pred("pt", vec![Term::int(1)])]));
        kb.assert_fact(fact("h", vec![Term::pred("iv", vec![Term::int(1)])]));
        let got = cands(
            &kb,
            PredKey::new("h", 1),
            vec![Term::pred("pt", vec![Term::var(0)])],
        );
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn multi_arg_indexing_picks_most_selective() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("h", 3);
        kb.set_index_args(key, &[0, 2]);
        // 100 facts share the first arg; third arg is unique.
        for i in 0..100 {
            kb.assert_fact(fact(
                "h",
                vec![
                    Term::atom("omega"),
                    Term::int(i),
                    Term::atom(&format!("o{i}")),
                ],
            ));
        }
        // First arg bound only: all 100.
        assert_eq!(
            cands(
                &kb,
                key,
                vec![Term::atom("omega"), Term::var(0), Term::var(1)]
            )
            .len(),
            100
        );
        // Third arg bound too: the unique one wins.
        assert_eq!(
            cands(
                &kb,
                key,
                vec![Term::atom("omega"), Term::var(0), Term::atom("o42")]
            )
            .len(),
            1
        );
    }

    #[test]
    fn list_head_indexing_discriminates() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("h", 2);
        kb.set_index_args(key, &[1]);
        for i in 0..50 {
            kb.assert_fact(fact(
                "h",
                vec![
                    Term::atom("site"),
                    Term::list(vec![Term::atom(&format!("s{i}")), Term::int(i)]),
                ],
            ));
        }
        let got = cands(
            &kb,
            key,
            vec![
                Term::atom("site"),
                Term::list(vec![Term::atom("s7"), Term::int(7)]),
            ],
        );
        assert_eq!(got.len(), 1);
        // A list headed by a variable matches everything.
        let got = cands(
            &kb,
            key,
            vec![Term::atom("site"), Term::cons(Term::var(0), Term::var(1))],
        );
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn index_config_applies_before_first_assertion() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("p", 2);
        kb.set_index_args(key, &[1]);
        kb.assert_fact(fact("p", vec![Term::atom("x"), Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::atom("x"), Term::int(2)]));
        assert_eq!(cands(&kb, key, vec![Term::var(0), Term::int(2)]).len(), 1);
    }

    #[test]
    fn call_args_deref_through_bindings() {
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            kb.assert_fact(fact("p", vec![Term::int(i)]));
        }
        let mut store = BindStore::new();
        store.ensure(0);
        assert!(store.unify(&Term::var(0), &Term::int(3)));
        let got = kb.candidates(PredKey::new("p", 1), &store, &[Term::var(0)]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn group_retraction() {
        let mut kb = KnowledgeBase::new();
        let g = GroupId::named("cwa_meta_model");
        kb.assert_fact(fact("p", vec![Term::atom("base")]));
        kb.assert_clause_in(g, fact("p", vec![Term::atom("meta")]), Term::atom("true"));
        kb.assert_clause_in(g, fact("q", vec![Term::atom("meta")]), Term::atom("true"));
        assert!(kb.group_active(g));
        assert_eq!(kb.retract_group(g), 2);
        assert!(!kb.group_active(g));
        assert_eq!(kb.clause_count(), 1);
        // Index rebuilt: remaining clause still findable.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::atom("base")]).len(),
            1
        );
    }

    #[test]
    fn retract_fact_removes_exactly_one() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_clause(fact("p", vec![Term::int(3)]), Term::atom("q"));
        assert!(kb.retract_fact(&fact("p", vec![Term::int(1)])));
        assert!(!kb.retract_fact(&fact("p", vec![Term::int(1)])));
        // Rules are not facts: retract_fact must not touch them.
        assert!(!kb.retract_fact(&fact("p", vec![Term::int(3)])));
        assert_eq!(kb.clause_count(), 2);
        // Index rebuilt.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(2)]).len(),
            1
        );
    }

    #[test]
    fn retract_predicate_removes_all() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        assert_eq!(kb.retract_predicate(PredKey::new("p", 1)), 2);
        assert_eq!(kb.clause_count(), 0);
    }

    #[test]
    fn natives_are_found() {
        let mut kb = KnowledgeBase::new();
        kb.register_native("always", 0, |_, _| Ok(true));
        assert!(kb.native(PredKey::new("always", 0)).is_some());
        assert!(kb.defined(PredKey::new("always", 0)));
        assert!(!kb.defined(PredKey::new("nothing", 0)));
    }

    #[test]
    fn atom_fact_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::atom("raining"));
        assert_eq!(cands(&kb, PredKey::new("raining", 0), vec![]).len(), 1);
    }

    #[test]
    fn pred_key_arity_is_checked_not_truncated() {
        // `p/65537` must not become `p/1`: the checked constructors reject
        // it instead of letting the arities collide modulo 2^16.
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY).is_some());
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY + 1).is_none());
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY + 2).is_none());
        let args: Vec<Term> = (0..PredKey::MAX_ARITY as u32 + 2).map(Term::var).collect();
        let oversized = Term::pred("p", args);
        assert_eq!(PredKey::of_term(&oversized), None);
        assert_eq!(
            PredKey::of_term(&Term::pred("p", vec![Term::var(0)])),
            Some(PredKey::new("p", 1))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 65535")]
    fn pred_key_new_panics_on_oversized_arity() {
        let _ = PredKey::new("p", PredKey::MAX_ARITY + 1);
    }

    #[test]
    fn noop_config_setters_leave_epoch_alone() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        let epoch = kb.epoch();
        // Re-asserting the current values must not invalidate anything.
        kb.set_indexing(true);
        kb.set_strict(false);
        kb.set_tabling(false);
        kb.set_table_all(false);
        kb.set_index_args(PredKey::new("p", 1), &[0]);
        assert_eq!(kb.epoch(), epoch, "no-op setters bumped the epoch");
        assert_eq!(kb.structural_generation(), 0);
        // Actual changes still do.
        kb.set_strict(true);
        assert!(kb.epoch() > epoch);
        assert_eq!(kb.structural_generation(), 1);
    }

    #[test]
    fn try_assert_reports_bad_heads() {
        let mut kb = KnowledgeBase::new();
        let err = kb
            .try_assert_clause_in(GroupId::root(), Term::int(7), Term::atom("true"))
            .unwrap_err();
        assert!(matches!(err, crate::EngineError::UncallableHead { .. }));
        let args: Vec<Term> = (0..PredKey::MAX_ARITY as u32 + 1).map(Term::var).collect();
        let err = kb
            .try_assert_clause_in(GroupId::root(), Term::pred("p", args), Term::atom("true"))
            .unwrap_err();
        assert!(matches!(err, crate::EngineError::ArityOverflow { .. }));
        assert_eq!(kb.clause_count(), 0);
        assert_eq!(kb.epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "not callable")]
    fn assert_clause_in_still_panics_on_uncallable_head() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause_in(GroupId::root(), Term::int(7), Term::atom("true"));
    }

    #[test]
    fn per_pred_generations_track_mutations() {
        let mut kb = KnowledgeBase::new();
        let p = PredKey::new("p", 1);
        let q = PredKey::new("q", 1);
        assert_eq!(kb.generation(p), 0);
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        assert_eq!(kb.generation(p), 1);
        assert_eq!(kb.generation(q), 0);
        kb.assert_fact(fact("q", vec![Term::atom("b")]));
        assert_eq!(kb.generation(p), 1);
        assert_eq!(kb.generation(q), 1);
        assert!(kb.retract_fact(&fact("p", vec![Term::atom("a")])));
        assert_eq!(kb.generation(p), 2);
        assert_eq!(kb.generation(q), 1);
    }

    #[test]
    fn dep_snapshot_survival_rule() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(fact("a", vec![Term::var(0)]), fact("b", vec![Term::var(0)]));
        kb.assert_fact(fact("b", vec![Term::atom("x")]));
        kb.assert_fact(fact("unrelated", vec![Term::atom("y")]));
        let a = PredKey::new("a", 1);
        let before = kb.dep_snapshot(a);
        assert!(!before.dynamic);
        // Unrelated mutation: epoch moves, a's snapshot deps don't.
        kb.assert_fact(fact("unrelated", vec![Term::atom("z")]));
        let after = kb.dep_snapshot(a);
        assert_ne!(before.epoch, after.epoch);
        assert_eq!(before.deps, after.deps);
        // Mutation inside the closure: deps change.
        kb.assert_fact(fact("b", vec![Term::atom("w")]));
        let after2 = kb.dep_snapshot(a);
        assert_ne!(after.deps, after2.deps);
    }

    #[test]
    fn delta_records_and_rolls_back() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_fact(fact("p", vec![Term::int(3)]));
        let snapshot: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();

        kb.begin_delta();
        let mark = kb.delta_len();
        kb.assert_fact(fact("p", vec![Term::int(4)]));
        assert!(kb.retract_fact(&fact("p", vec![Term::int(2)])));
        let g = GroupId::named("pack");
        kb.assert_clause_in(g, fact("q", vec![Term::atom("m")]), Term::atom("true"));
        assert_eq!(kb.retract_group(g), 1);
        assert_eq!(kb.retract_predicate(PredKey::new("p", 1)), 3);
        let delta = kb.delta_since(mark);
        assert_eq!(delta.len(), 5);
        assert!(delta.dirty_preds().contains(&PredKey::new("p", 1)));
        assert!(delta.dirty_preds().contains(&PredKey::new("q", 1)));

        let undone = kb.rollback_to(mark);
        assert_eq!(undone, 5);
        assert_eq!(kb.delta_len(), mark);
        // Exact clause list (order included) restored.
        let restored: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        assert_eq!(restored, snapshot);
        assert_eq!(kb.clause_count(), 3);
        assert!(!kb.group_active(g));
        // Index still consistent after the positional reinserts.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(2)]).len(),
            1
        );
    }

    #[test]
    fn rollback_restores_interleaved_group_positions() {
        let mut kb = KnowledgeBase::new();
        let g = GroupId::named("meta");
        kb.assert_fact(fact("p", vec![Term::int(0)]));
        kb.assert_clause_in(g, fact("p", vec![Term::int(1)]), Term::atom("true"));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_clause_in(g, fact("p", vec![Term::int(3)]), Term::atom("true"));
        let before: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        kb.begin_delta();
        assert_eq!(kb.retract_group(g), 2);
        kb.rollback_to(0);
        let after: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        assert_eq!(before, after);
        assert!(kb.group_active(g));
    }

    #[test]
    fn drain_delta_keeps_recorder_running() {
        let mut kb = KnowledgeBase::new();
        kb.begin_delta();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        let d = kb.drain_delta();
        assert_eq!(d.len(), 1);
        assert!(kb.recording());
        assert_eq!(kb.delta_len(), 0);
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        assert_eq!(kb.delta_len(), 1);
        let rest = kb.end_delta().unwrap();
        assert_eq!(rest.len(), 1);
        assert!(!kb.recording());
    }

    #[test]
    fn out_of_range_index_positions_ignored() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("p", 1);
        kb.set_index_args(key, &[0, 5]);
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        assert_eq!(cands(&kb, key, vec![Term::atom("a")]).len(), 1);
    }
}
