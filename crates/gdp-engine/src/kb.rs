//! The clause store.
//!
//! A [`KnowledgeBase`] holds Horn clauses grouped by predicate, with three
//! features the formalism leans on heavily:
//!
//! * **Multi-argument indexing.** Roman's prototype accepted "Prolog's
//!   computational inefficiency" (§I); reified facts make every fact a
//!   `holds/5` clause whose *first* argument (the model) is almost always
//!   the same atom, so classic first-argument indexing degenerates to a
//!   scan. A predicate can therefore be indexed on several argument
//!   positions ([`KnowledgeBase::set_index_args`]); each call picks the
//!   most selective index for its (dereferenced) arguments. List-valued
//!   arguments are keyed by their first element, which is what makes the
//!   reified `h(M, S, T, Pred, [Obj | …])` representation discriminate on
//!   the object. Indexing can be disabled wholesale
//!   ([`KnowledgeBase::set_indexing`]) to act as the 1986-Prolog baseline
//!   in benchmarks.
//!
//! * **Clause groups.** Meta-models "may be activated on demand" (§IV.C):
//!   each clause belongs to a named [`GroupId`], and a whole group can be
//!   retracted in one call. Activating a meta-model asserts its rule pack
//!   under its group; deactivating retracts the group.
//!
//! * **Native predicates** — semi-determinate Rust callbacks used for
//!   semantic-domain operations the paper treats as given (distance
//!   functions, resolution functions, interpolation, …).

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::delta::{CommitRecord, Delta, DeltaOp};
use crate::deps::{ArgSpec, DepGraph};
use crate::error::{EngineError, EngineResult};
use crate::hash::{FxHashMap, FxHashSet};
use crate::symbol::{symbols, Sym};
use crate::table::{AnswerTable, CyclePolicy, TableValidity};
use crate::term::{Term, Var, F64};
use crate::unify::BindStore;

/// Identifies a predicate: functor plus arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredKey {
    /// Functor symbol.
    pub name: Sym,
    /// Number of arguments.
    pub arity: u16,
}

impl PredKey {
    /// Largest arity a predicate key can represent. Arities beyond this
    /// are rejected (never silently truncated — a `p/65537` call must not
    /// dispatch to `p/1` clauses).
    pub const MAX_ARITY: usize = u16::MAX as usize;

    /// Build a key from a functor name and arity.
    ///
    /// # Panics
    ///
    /// Panics when `arity` exceeds [`PredKey::MAX_ARITY`]; use
    /// [`PredKey::try_new`] when the arity is not statically known to be
    /// small.
    pub fn new(name: &str, arity: usize) -> PredKey {
        PredKey::try_new(name, arity)
            .unwrap_or_else(|| panic!("predicate arity {arity} exceeds {}", PredKey::MAX_ARITY))
    }

    /// Build a key from a functor name and arity, or `None` when the arity
    /// exceeds [`PredKey::MAX_ARITY`].
    pub fn try_new(name: &str, arity: usize) -> Option<PredKey> {
        Some(PredKey {
            name: Sym::new(name),
            arity: u16::try_from(arity).ok()?,
        })
    }

    /// Key describing a callable term (atom or compound). `None` for
    /// non-callable terms and for compounds whose arity exceeds
    /// [`PredKey::MAX_ARITY`].
    pub fn of_term(t: &Term) -> Option<PredKey> {
        Some(PredKey {
            name: t.functor()?,
            arity: u16::try_from(t.arity()?).ok()?,
        })
    }
}

impl std::fmt::Display for PredKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name.as_str(), self.arity)
    }
}

/// A named clause group. Groups are the engine-level mechanism behind the
/// paper's models and meta-models: rule packs that can be asserted and
/// retracted as a unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GroupId(Sym);

impl GroupId {
    /// Group with the given name.
    pub fn named(name: &str) -> GroupId {
        GroupId(Sym::new(name))
    }

    /// The default group for clauses asserted without an explicit group.
    /// Named after the paper's default model ω (§III.D).
    pub fn root() -> GroupId {
        GroupId(Sym::new("omega"))
    }

    /// The group's name.
    pub fn name(self) -> Sym {
        self.0
    }
}

/// A stored Horn clause `head :- body`, with variables numbered `0..n_vars`.
#[derive(Clone, Debug)]
pub struct Clause {
    /// Clause head (an atom or compound term).
    pub head: Term,
    /// Clause body; `true` for facts.
    pub body: Term,
    /// Number of distinct variables; the solver allocates this many fresh
    /// slots when activating the clause.
    pub n_vars: u32,
    /// The group this clause belongs to.
    pub group: GroupId,
}

impl Clause {
    /// Build a clause, computing `n_vars` from the head and body.
    ///
    /// Variables must be densely numbered starting at zero for the slot
    /// allocation to be tight; sparse numbering is still correct, merely
    /// wasteful, so it is accepted.
    pub fn new(head: Term, body: Term, group: GroupId) -> Clause {
        let n_vars = head
            .max_var()
            .into_iter()
            .chain(body.max_var())
            .max()
            .map_or(0, |m| m + 1);
        Clause {
            head,
            body,
            n_vars,
            group,
        }
    }
}

/// Index key for one argument position of a clause head.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ArgKey {
    Atom(Sym),
    Int(i64),
    Float(F64),
    Str(Arc<str>),
    /// Non-list compounds are indexed by functor/arity only. The arity is
    /// kept at full width — unlike [`PredKey`], an index key has no
    /// representation limit to enforce, and truncating here would be an
    /// avoidable (if sound: candidates are filtered by head unification)
    /// over-approximation.
    Functor(Sym, usize),
    /// Lists are indexed by their first element — the discriminating
    /// position in the reified `[value/object | …]` argument lists.
    ListHead(Box<ArgKey>),
}

/// Canonicalize a float index key: `-0.0` and `0.0` unify (and compare
/// equal), so they must land in one bit-identical bucket — insert and
/// lookup both go through here. NaN cannot occur ([`F64`] rejects it at
/// construction), so keys stay totally ordered.
fn canon_float(f: F64) -> F64 {
    if f.get() == 0.0 {
        F64::new(0.0)
    } else {
        f
    }
}

impl ArgKey {
    /// Key for a clause-head argument. `None` for variables and for lists
    /// whose head is a variable (such clauses match any call).
    fn of(t: &Term) -> Option<ArgKey> {
        match t {
            Term::Var(_) => None,
            Term::Atom(s) => Some(ArgKey::Atom(*s)),
            Term::Int(i) => Some(ArgKey::Int(*i)),
            Term::Float(f) => Some(ArgKey::Float(canon_float(*f))),
            Term::Str(s) => Some(ArgKey::Str(s.clone())),
            Term::Compound(f, args) => {
                if *f == symbols::cons() && args.len() == 2 {
                    Some(ArgKey::ListHead(Box::new(ArgKey::of(&args[0])?)))
                } else {
                    Some(ArgKey::Functor(*f, args.len()))
                }
            }
        }
    }

    /// Key for a *call* argument, following bindings one level deep (and
    /// through the list head).
    fn of_call(store: &BindStore, t: &Term) -> Option<ArgKey> {
        match store.deref(t) {
            Term::Var(_) => None,
            Term::Atom(s) => Some(ArgKey::Atom(*s)),
            Term::Int(i) => Some(ArgKey::Int(*i)),
            Term::Float(f) => Some(ArgKey::Float(canon_float(*f))),
            Term::Str(s) => Some(ArgKey::Str(s.clone())),
            Term::Compound(f, args) => {
                if *f == symbols::cons() && args.len() == 2 {
                    Some(ArgKey::ListHead(Box::new(ArgKey::of_call(
                        store, &args[0],
                    )?)))
                } else {
                    Some(ArgKey::Functor(*f, args.len()))
                }
            }
        }
    }
}

/// A (possibly half-open, possibly unbounded) numeric interval, used both
/// for constraint-carrying candidate queries and as the solver-side value
/// of one `range_call` bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NumRange {
    /// Lower bound (`-inf` for unbounded).
    pub lo: f64,
    /// Is the lower bound exclusive?
    pub lo_open: bool,
    /// Upper bound (`inf` for unbounded).
    pub hi: f64,
    /// Is the upper bound exclusive?
    pub hi_open: bool,
}

impl NumRange {
    /// The unconstrained interval.
    pub const ALL: NumRange = NumRange {
        lo: f64::NEG_INFINITY,
        lo_open: false,
        hi: f64::INFINITY,
        hi_open: false,
    };

    /// The degenerate closed interval `[x, x]`.
    pub fn point(x: f64) -> NumRange {
        NumRange {
            lo: x,
            lo_open: false,
            hi: x,
            hi_open: false,
        }
    }

    /// Closed-form constructor.
    pub fn new(lo: f64, lo_open: bool, hi: f64, hi_open: bool) -> NumRange {
        NumRange {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }

    /// Is `x` inside the interval?
    pub fn contains(&self, x: f64) -> bool {
        (if self.lo_open {
            x > self.lo
        } else {
            x >= self.lo
        }) && (if self.hi_open {
            x < self.hi
        } else {
            x <= self.hi
        })
    }

    /// Does the interval contain no point at all?
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && (self.lo_open || self.hi_open))
    }

    /// The intersection of two intervals (tighter bound wins; on a tie the
    /// stricter openness wins).
    pub fn intersect(&self, other: &NumRange) -> NumRange {
        let (lo, lo_open) = if self.lo > other.lo {
            (self.lo, self.lo_open)
        } else if other.lo > self.lo {
            (other.lo, other.lo_open)
        } else {
            (self.lo, self.lo_open || other.lo_open)
        };
        let (hi, hi_open) = if self.hi < other.hi {
            (self.hi, self.hi_open)
        } else if other.hi < self.hi {
            (other.hi, other.hi_open)
        } else {
            (self.hi, self.hi_open || other.hi_open)
        };
        NumRange {
            lo,
            lo_open,
            hi,
            hi_open,
        }
    }
}

/// One step of an [`ArgPath`]: descend into child `child` when the term at
/// this level is a compound with one of the listed functor/arity shapes.
/// Several functors may share a step (the spatial qualifiers `su`/`ss`/`sa`
/// all carry their point in the same position).
#[derive(Clone, Debug, PartialEq)]
pub struct PathStep {
    /// Accepted functor/arity alternatives at this level.
    pub functors: Vec<(Sym, usize)>,
    /// Child index to descend into.
    pub child: usize,
}

impl PathStep {
    fn matches(&self, f: Sym, arity: usize) -> bool {
        self.functors.iter().any(|&(s, a)| s == f && a == arity)
    }
}

/// A path from one head-argument position to a numeric subterm: start at
/// argument `pos`, then follow `steps`. A clause whose head does not match
/// the path (different shape, variable along the way, non-numeric leaf) is
/// *unkeyed* and stays a candidate for every call.
#[derive(Clone, Debug, PartialEq)]
pub struct ArgPath {
    /// Head-argument position the walk starts at.
    pub pos: u16,
    /// Steps into the argument's subterm structure.
    pub steps: Vec<PathStep>,
}

impl ArgPath {
    /// A path that keys argument `pos` directly.
    pub fn arg(pos: usize) -> ArgPath {
        ArgPath {
            pos: u16::try_from(pos).expect("argument position exceeds u16"),
            steps: Vec::new(),
        }
    }

    /// Append a single-functor step.
    pub fn step(self, functor: &str, arity: usize, child: usize) -> ArgPath {
        self.step_any(&[(functor, arity)], child)
    }

    /// Append a step accepting any of several functor/arity shapes (all
    /// must carry the keyed subterm at the same child index).
    pub fn step_any(mut self, functors: &[(&str, usize)], child: usize) -> ArgPath {
        self.steps.push(PathStep {
            functors: functors.iter().map(|&(f, a)| (Sym::new(f), a)).collect(),
            child,
        });
        self
    }

    /// The numeric key of `head`'s subterm at this path, if the walk
    /// matches and lands on a number.
    fn key_of(&self, head: &Term) -> Option<f64> {
        let mut t = head.args().get(self.pos as usize)?;
        for step in &self.steps {
            match t {
                Term::Compound(f, children) if step.matches(*f, children.len()) => {
                    t = children.get(step.child)?;
                }
                _ => return None,
            }
        }
        match t {
            Term::Int(i) => Some(*i as f64),
            Term::Float(f) => Some(canon_float(*f).get()),
            _ => None,
        }
    }

    /// Walk a *call*'s arguments, dereferencing at every level.
    fn probe(&self, store: &BindStore, args: &[Term], bounds: &BoundSet) -> Probe {
        let mut t = match args.get(self.pos as usize) {
            Some(t) => t,
            None => return Probe::Unconstrained,
        };
        for step in &self.steps {
            match store.deref(t) {
                Term::Var(_) => return Probe::Unconstrained,
                Term::Compound(f, children) if step.matches(*f, children.len()) => {
                    t = match children.get(step.child) {
                        Some(c) => c,
                        None => return Probe::Unconstrained,
                    };
                }
                // Bound to a different shape: no *keyed* head can unify
                // with this call, so only unkeyed clauses are candidates.
                _ => return Probe::Mismatch,
            }
        }
        match store.deref(t) {
            Term::Int(i) => Probe::Range(NumRange::point(*i as f64)),
            Term::Float(f) => Probe::Range(NumRange::point(canon_float(*f).get())),
            Term::Var(v) => match bounds.get(*v) {
                Some(r) => Probe::Range(*r),
                None => Probe::Unconstrained,
            },
            // Bound non-numeric where keyed heads carry numbers.
            _ => Probe::Mismatch,
        }
    }
}

/// Outcome of walking one [`ArgPath`] over a call's arguments.
enum Probe {
    /// The call is bound to a shape no keyed head can unify with.
    Mismatch,
    /// The keyed subterm is constrained to this interval (a bound number
    /// gives the degenerate point interval; an unbound variable gives its
    /// active `range_call` bound).
    Range(NumRange),
    /// No usable constraint; the index cannot serve this call.
    Unconstrained,
}

/// Configuration of one range index ([`KnowledgeBase::set_range_indexes`]).
#[derive(Clone, Debug, PartialEq)]
pub enum RangeSpec {
    /// Sorted index over a single numeric subterm (time instants, reading
    /// values, resolutions).
    Interval(ArgPath),
    /// Uniform grid over a numeric `(x, y)` subterm pair (spatial points).
    /// The grid bucketing is independent of any registered spatial
    /// resolution; `cell` only trades bucket count against bucket size.
    Grid {
        /// Path to the x coordinate.
        x: ArgPath,
        /// Path to the y coordinate.
        y: ArgPath,
        /// Grid cell edge length (must be positive and finite).
        cell: f64,
    },
}

/// Where a clause head lands in a range index.
enum RangeSlot {
    Interval(F64),
    Grid(i64, i64),
    Unkeyed,
}

fn grid_coord(v: f64, cell: f64) -> i64 {
    (v / cell).floor() as i64
}

/// Upper bound on grid cells enumerated per box query; larger boxes fall
/// back to "index inapplicable" (a scan of the other selections).
const GRID_CELL_CAP: i64 = 1024;

#[derive(Clone, PartialEq)]
enum RangeStore {
    Interval(BTreeMap<F64, Vec<u32>>),
    Grid(FxHashMap<(i64, i64), Vec<u32>>),
}

/// One range index over a predicate's clauses: keyed buckets of clause
/// positions plus the unkeyed positions that every call must keep.
#[derive(Clone)]
struct RangeIndex {
    spec: RangeSpec,
    store: RangeStore,
    /// Positions of clauses whose head does not key under the spec
    /// (rules, variable subterms, other shapes): always candidates.
    unkeyed: Vec<u32>,
}

impl RangeIndex {
    fn new(spec: RangeSpec) -> RangeIndex {
        let store = match &spec {
            RangeSpec::Interval(_) => RangeStore::Interval(BTreeMap::new()),
            RangeSpec::Grid { .. } => RangeStore::Grid(FxHashMap::default()),
        };
        RangeIndex {
            spec,
            store,
            unkeyed: Vec::new(),
        }
    }

    fn clear(&mut self) {
        match &mut self.store {
            RangeStore::Interval(map) => map.clear(),
            RangeStore::Grid(map) => map.clear(),
        }
        self.unkeyed.clear();
    }

    fn slot_of(spec: &RangeSpec, head: &Term) -> RangeSlot {
        match spec {
            RangeSpec::Interval(path) => match path.key_of(head).and_then(F64::try_new) {
                Some(k) => RangeSlot::Interval(k),
                None => RangeSlot::Unkeyed,
            },
            RangeSpec::Grid { x, y, cell } => {
                if !(*cell > 0.0 && cell.is_finite()) {
                    return RangeSlot::Unkeyed;
                }
                match (x.key_of(head), y.key_of(head)) {
                    (Some(xv), Some(yv)) if xv.is_finite() && yv.is_finite() => {
                        RangeSlot::Grid(grid_coord(xv, *cell), grid_coord(yv, *cell))
                    }
                    _ => RangeSlot::Unkeyed,
                }
            }
        }
    }

    fn insert(&mut self, clause_pos: u32, head: &Term) {
        match (Self::slot_of(&self.spec, head), &mut self.store) {
            (RangeSlot::Interval(k), RangeStore::Interval(map)) => {
                map.entry(k).or_default().push(clause_pos);
            }
            (RangeSlot::Grid(cx, cy), RangeStore::Grid(map)) => {
                map.entry((cx, cy)).or_default().push(clause_pos);
            }
            _ => self.unkeyed.push(clause_pos),
        }
    }

    fn remove_positions(&mut self, removed: &[u32]) {
        remap_after_removal(&mut self.unkeyed, removed);
        match &mut self.store {
            RangeStore::Interval(map) => map.retain(|_, list| {
                remap_after_removal(list, removed);
                !list.is_empty()
            }),
            RangeStore::Grid(map) => map.retain(|_, list| {
                remap_after_removal(list, removed);
                !list.is_empty()
            }),
        }
    }

    fn insert_at(&mut self, at: u32, head: &Term) {
        shift_for_insert(&mut self.unkeyed, at);
        match &mut self.store {
            RangeStore::Interval(map) => {
                for list in map.values_mut() {
                    shift_for_insert(list, at);
                }
            }
            RangeStore::Grid(map) => {
                for list in map.values_mut() {
                    shift_for_insert(list, at);
                }
            }
        }
        match (Self::slot_of(&self.spec, head), &mut self.store) {
            (RangeSlot::Interval(k), RangeStore::Interval(map)) => {
                sorted_insert(map.entry(k).or_default(), at);
            }
            (RangeSlot::Grid(cx, cy), RangeStore::Grid(map)) => {
                sorted_insert(map.entry((cx, cy)).or_default(), at);
            }
            _ => sorted_insert(&mut self.unkeyed, at),
        }
    }

    /// The sorted position list this index selects for a call: clauses
    /// whose key can lie in the constrained range, plus the unkeyed
    /// clauses. `None` when the call carries no constraint this index can
    /// use (the caller falls back to its other selections).
    fn select(&self, store: &BindStore, args: &[Term], bounds: &BoundSet) -> Option<Vec<u32>> {
        let keyed: Vec<u32> = match (&self.spec, &self.store) {
            (RangeSpec::Interval(path), RangeStore::Interval(map)) => {
                match path.probe(store, args, bounds) {
                    Probe::Mismatch => Vec::new(),
                    Probe::Unconstrained => return None,
                    Probe::Range(r) => {
                        if r.is_empty() {
                            Vec::new()
                        } else if r.lo == f64::NEG_INFINITY && r.hi == f64::INFINITY {
                            // Unbounded on both sides: selects everything,
                            // prunes nothing — not applicable.
                            return None;
                        } else {
                            let lo = match F64::try_new(r.lo) {
                                Some(k) if r.lo_open => Bound::Excluded(k),
                                Some(k) => Bound::Included(k),
                                None => return None,
                            };
                            let hi = match F64::try_new(r.hi) {
                                Some(k) if r.hi_open => Bound::Excluded(k),
                                Some(k) => Bound::Included(k),
                                None => return None,
                            };
                            let mut out = Vec::new();
                            for (_, list) in map.range((lo, hi)) {
                                out.extend_from_slice(list);
                            }
                            out.sort_unstable();
                            out
                        }
                    }
                }
            }
            (RangeSpec::Grid { x, y, cell }, RangeStore::Grid(map)) => {
                if !(*cell > 0.0 && cell.is_finite()) {
                    return None;
                }
                let px = x.probe(store, args, bounds);
                let py = y.probe(store, args, bounds);
                if matches!(px, Probe::Mismatch) || matches!(py, Probe::Mismatch) {
                    Vec::new()
                } else {
                    let (Probe::Range(rx), Probe::Range(ry)) = (px, py) else {
                        return None;
                    };
                    if rx.is_empty() || ry.is_empty() {
                        Vec::new()
                    } else if !(rx.lo.is_finite()
                        && rx.hi.is_finite()
                        && ry.lo.is_finite()
                        && ry.hi.is_finite())
                    {
                        // Unbounded boxes cannot be enumerated cell-wise.
                        return None;
                    } else {
                        let (cx0, cx1) = (grid_coord(rx.lo, *cell), grid_coord(rx.hi, *cell));
                        let (cy0, cy1) = (grid_coord(ry.lo, *cell), grid_coord(ry.hi, *cell));
                        let nx = cx1.checked_sub(cx0).and_then(|d| d.checked_add(1))?;
                        let ny = cy1.checked_sub(cy0).and_then(|d| d.checked_add(1))?;
                        if nx <= 0 || ny <= 0 || nx.checked_mul(ny)? > GRID_CELL_CAP {
                            return None;
                        }
                        let mut out = Vec::new();
                        for cx in cx0..=cx1 {
                            for cy in cy0..=cy1 {
                                if let Some(list) = map.get(&(cx, cy)) {
                                    out.extend_from_slice(list);
                                }
                            }
                        }
                        out.sort_unstable();
                        out
                    }
                }
            }
            _ => unreachable!("range store shape matches its spec"),
        };
        Some(union_sorted(&keyed, &self.unkeyed))
    }
}

impl std::fmt::Display for ArgPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "arg{}", self.pos)?;
        for step in &self.steps {
            let names: Vec<String> = step
                .functors
                .iter()
                .map(|&(s, a)| format!("{}/{a}", s.as_str()))
                .collect();
            write!(f, ".{{{}}}[{}]", names.join("|"), step.child)?;
        }
        Ok(())
    }
}

impl std::fmt::Display for RangeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeSpec::Interval(p) => write!(f, "interval({p})"),
            RangeSpec::Grid { x, y, cell } => write!(f, "grid({x}, {y}; cell={cell})"),
        }
    }
}

/// Active numeric bounds on unbound variables, collected by the solver
/// from its `range_call` scopes and passed into
/// [`KnowledgeBase::candidates`]. Fixed-capacity: constraints beyond the
/// cap are simply not used for pruning (always sound).
pub struct BoundSet {
    len: usize,
    items: [(Var, NumRange); BoundSet::CAP],
}

impl Default for BoundSet {
    fn default() -> BoundSet {
        BoundSet {
            len: 0,
            items: [(Var(0), NumRange::ALL); BoundSet::CAP],
        }
    }
}

impl BoundSet {
    /// Maximum number of simultaneously tracked variable bounds.
    pub const CAP: usize = 8;

    /// Add a bound for `var`, intersecting with any existing bound on the
    /// same variable.
    pub fn insert(&mut self, var: Var, range: NumRange) {
        for slot in &mut self.items[..self.len] {
            if slot.0 == var {
                slot.1 = slot.1.intersect(&range);
                return;
            }
        }
        if self.len < BoundSet::CAP {
            self.items[self.len] = (var, range);
            self.len += 1;
        }
    }

    /// The active bound on `var`, if any.
    pub fn get(&self, var: Var) -> Option<&NumRange> {
        self.items[..self.len]
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, r)| r)
    }

    /// Number of tracked bounds.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Drop the `removed` positions (ascending) from an ascending position
/// list and renumber the survivors past the removals below them.
fn remap_after_removal(list: &mut Vec<u32>, removed: &[u32]) {
    list.retain_mut(|p| match removed.binary_search(p) {
        Ok(_) => false,
        Err(below) => {
            *p -= below as u32;
            true
        }
    });
}

/// Renumber an ascending position list for an insertion at `at`.
fn shift_for_insert(list: &mut [u32], at: u32) {
    for p in list.iter_mut() {
        if *p >= at {
            *p += 1;
        }
    }
}

/// Insert `at` into an ascending position list, keeping it sorted.
fn sorted_insert(list: &mut Vec<u32>, at: u32) {
    let i = list.partition_point(|&p| p < at);
    list.insert(i, at);
}

/// Union of two disjoint ascending lists, ascending.
fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    out.push(x);
                    i += 1;
                } else {
                    out.push(y);
                    j += 1;
                }
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Intersection of two ascending lists, ascending.
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// A clause-position list with inline storage for the common small case —
/// selective index hits with a handful of candidates allocate nothing.
pub struct PosList {
    len: usize,
    inline: [u32; PosList::CAP],
    spill: Vec<u32>,
}

impl Default for PosList {
    fn default() -> PosList {
        PosList {
            len: 0,
            inline: [0; PosList::CAP],
            spill: Vec::new(),
        }
    }
}

impl PosList {
    /// Inline capacity before spilling to the heap.
    pub const CAP: usize = 16;

    /// Append a position.
    pub fn push(&mut self, p: u32) {
        if self.len < PosList::CAP {
            self.inline[self.len] = p;
        } else {
            self.spill.push(p);
        }
        self.len += 1;
    }

    /// Number of stored positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The position at index `i`.
    pub fn get(&self, i: usize) -> Option<u32> {
        if i >= self.len {
            None
        } else if i < PosList::CAP {
            Some(self.inline[i])
        } else {
            Some(self.spill[i - PosList::CAP])
        }
    }
}

/// Candidate clauses for one call, borrowed from the knowledge base — the
/// scan path and small index hits allocate nothing.
pub enum Candidates<'kb> {
    /// Every clause of the predicate (no applicable index, or indexing
    /// disabled).
    All(&'kb [Arc<Clause>]),
    /// Selected clause positions, ascending (assertion order preserved).
    Picked {
        /// The predicate's full clause list.
        clauses: &'kb [Arc<Clause>],
        /// Selected positions into it.
        pos: PosList,
    },
}

impl<'kb> Candidates<'kb> {
    /// Number of candidates.
    pub fn len(&self) -> usize {
        match self {
            Candidates::All(c) => c.len(),
            Candidates::Picked { pos, .. } => pos.len(),
        }
    }

    /// Is the candidate set empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The candidate at index `i`.
    pub fn get(&self, i: usize) -> Option<&'kb Arc<Clause>> {
        match self {
            Candidates::All(c) => c.get(i),
            Candidates::Picked { clauses, pos } => pos.get(i).map(|p| &clauses[p as usize]),
        }
    }

    /// Iterate the candidates in order.
    pub fn iter(&self) -> impl Iterator<Item = &'kb Arc<Clause>> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index within len"))
    }

    /// Collect into an owned vector (tests, diagnostics).
    pub fn to_vec(&self) -> Vec<Arc<Clause>> {
        self.iter().cloned().collect()
    }
}

/// Per-predicate index usage counters. Atomics because clause selection
/// takes `&self` and runs concurrently from parallel audit workers.
#[derive(Default)]
struct IndexStats {
    consults: AtomicU64,
    hash_hits: AtomicU64,
    range_hits: AtomicU64,
    pruned: AtomicU64,
    scans: AtomicU64,
}

impl Clone for IndexStats {
    /// Counters transfer by value: a snapshot starts from the live
    /// numbers and the two copies diverge independently afterwards.
    fn clone(&self) -> IndexStats {
        let copy = |a: &AtomicU64| AtomicU64::new(a.load(Ordering::Relaxed));
        IndexStats {
            consults: copy(&self.consults),
            hash_hits: copy(&self.hash_hits),
            range_hits: copy(&self.range_hits),
            pruned: copy(&self.pruned),
            scans: copy(&self.scans),
        }
    }
}

/// Per-predicate index configuration and usage snapshot
/// ([`KnowledgeBase::index_stats`]).
#[derive(Clone, Debug)]
pub struct IndexReport {
    /// The predicate.
    pub pred: PredKey,
    /// Current clause count.
    pub clauses: usize,
    /// Hash-indexed argument positions.
    pub hash_positions: Vec<u16>,
    /// Configured range indexes.
    pub range_specs: Vec<RangeSpec>,
    /// Candidate queries answered (indexing on).
    pub consults: u64,
    /// Queries where a hash index applied.
    pub hash_hits: u64,
    /// Queries where at least one range index applied.
    pub range_hits: u64,
    /// Clauses pruned across all queries (stored minus selected).
    pub pruned: u64,
    /// Queries that fell back to a full scan.
    pub scans: u64,
}

/// One per-argument-position index.
#[derive(Clone, Default)]
struct ArgIndex {
    pos: u16,
    by_key: FxHashMap<ArgKey, Vec<u32>>,
    /// Positions of clauses whose argument at `pos` carries no key.
    var_clauses: Vec<u32>,
}

impl ArgIndex {
    fn insert(&mut self, clause_pos: u32, head: &Term) {
        match head.args().get(self.pos as usize).and_then(ArgKey::of) {
            Some(key) => self.by_key.entry(key).or_default().push(clause_pos),
            None => self.var_clauses.push(clause_pos),
        }
    }

    fn remove_positions(&mut self, removed: &[u32]) {
        remap_after_removal(&mut self.var_clauses, removed);
        self.by_key.retain(|_, list| {
            remap_after_removal(list, removed);
            !list.is_empty()
        });
    }

    fn insert_at(&mut self, at: u32, head: &Term) {
        shift_for_insert(&mut self.var_clauses, at);
        for list in self.by_key.values_mut() {
            shift_for_insert(list, at);
        }
        match head.args().get(self.pos as usize).and_then(ArgKey::of) {
            Some(key) => sorted_insert(self.by_key.entry(key).or_default(), at),
            None => sorted_insert(&mut self.var_clauses, at),
        }
    }
}

#[derive(Clone, Default)]
struct PredEntry {
    clauses: Vec<Arc<Clause>>,
    indexes: Vec<ArgIndex>,
    ranges: Vec<RangeIndex>,
    stats: IndexStats,
}

impl PredEntry {
    fn new(index_positions: &[u16], range_specs: &[RangeSpec]) -> PredEntry {
        PredEntry {
            clauses: Vec::new(),
            indexes: index_positions
                .iter()
                .map(|&pos| ArgIndex {
                    pos,
                    ..ArgIndex::default()
                })
                .collect(),
            ranges: range_specs
                .iter()
                .map(|spec| RangeIndex::new(spec.clone()))
                .collect(),
            stats: IndexStats::default(),
        }
    }

    fn rebuild_indexes(&mut self) {
        for index in &mut self.indexes {
            index.by_key.clear();
            index.var_clauses.clear();
        }
        for rindex in &mut self.ranges {
            rindex.clear();
        }
        for (pos, clause) in self.clauses.iter().enumerate() {
            for index in &mut self.indexes {
                index.insert(pos as u32, &clause.head);
            }
            for rindex in &mut self.ranges {
                rindex.insert(pos as u32, &clause.head);
            }
        }
    }

    fn push(&mut self, clause: Arc<Clause>) {
        let pos = self.clauses.len() as u32;
        for index in &mut self.indexes {
            index.insert(pos, &clause.head);
        }
        for rindex in &mut self.ranges {
            rindex.insert(pos, &clause.head);
        }
        self.clauses.push(clause);
    }

    /// Incremental maintenance: drop removed clause positions (ascending)
    /// from every index and renumber the survivors — no rebuild.
    fn remove_index_positions(&mut self, removed: &[u32]) {
        for index in &mut self.indexes {
            index.remove_positions(removed);
        }
        for rindex in &mut self.ranges {
            rindex.remove_positions(removed);
        }
    }

    /// Incremental maintenance: renumber for a clause (re)inserted at
    /// position `at` and key it into every index.
    fn insert_index_position(&mut self, at: u32, head: &Term) {
        for index in &mut self.indexes {
            index.insert_at(at, head);
        }
        for rindex in &mut self.ranges {
            rindex.insert_at(at, head);
        }
    }
}

/// Result type a native predicate reports: `true` = succeed (bindings made
/// through the store stay), `false` = fail.
pub type NativeOutcome = EngineResult<bool>;

/// A semi-determinate native predicate: receives the bind store and the raw
/// (un-dereferenced) call arguments; may bind variables via
/// [`BindStore::unify`]; succeeds at most once.
pub type NativeFn = Arc<dyn Fn(&mut BindStore, &[Term]) -> NativeOutcome + Send + Sync>;

/// Recursive strongly-connected components of the call graph plus a
/// membership index into them.
type SccPartition = (Arc<Vec<Vec<PredKey>>>, FxHashMap<PredKey, usize>);

/// Lazily built dependency information, cleared on every epoch bump.
#[derive(Default)]
struct DepCache {
    graph: Option<Arc<DepGraph>>,
    snapshots: FxHashMap<PredKey, Arc<TableValidity>>,
    /// Members of one recursive component invalidate together (their
    /// answer sets were computed jointly), so they share one validity
    /// snapshot.
    sccs: Option<SccPartition>,
}

/// The clause store. See the module docs.
///
/// Entries are held behind [`Arc`] so a snapshot
/// ([`KnowledgeBase::snapshot`]) is a map of shared pointers rather than a
/// deep copy: writers copy-on-write the entries they touch
/// (`Arc::make_mut`), leaving every snapshot's view intact.
pub struct KnowledgeBase {
    preds: FxHashMap<PredKey, Arc<PredEntry>>,
    natives: FxHashMap<PredKey, NativeFn>,
    /// Index positions configured per predicate before/after its entry
    /// exists; default is first-argument indexing.
    index_config: FxHashMap<PredKey, Vec<u16>>,
    /// Range-index specs configured per predicate (empty by default).
    range_config: FxHashMap<PredKey, Vec<RangeSpec>>,
    indexing: bool,
    strict: bool,
    clause_count: usize,
    /// Modification counter: bumped by every operation that can change
    /// what is derivable. Cached table entries carry the epoch they were
    /// built at and are dropped on mismatch.
    epoch: u64,
    /// Master switch for tabled resolution (off by default).
    tabling_enabled: bool,
    /// Table every user predicate, not just the marked ones.
    table_all: bool,
    /// Predicates opted into tabling.
    tabled: FxHashSet<PredKey>,
    /// How SLG evaluation treats a recursive cycle: inductive (least
    /// fixpoint — a cycle with no independent base case fails) or
    /// coinductive (a cycle succeeds as its own evidence).
    cycle_policy: CyclePolicy,
    /// Predicates individually marked coinductive, regardless of the
    /// KB-wide default policy.
    coinductive: FxHashSet<PredKey>,
    /// The memoized answer cache shared by all solvers over this KB.
    table: AnswerTable,
    /// Per-predicate generation counters: bumped whenever that predicate's
    /// clauses or native implementation change. Predicates never touched
    /// are implicitly at generation 0. Table entries survive an epoch bump
    /// when every generation in their dependency closure is unchanged.
    generations: FxHashMap<PredKey, u64>,
    /// Structural-configuration generation: indexing on/off, per-predicate
    /// index layout, strict mode. These change solution order or error
    /// behavior without touching clauses, so they invalidate independently
    /// of the per-predicate counters.
    structural_gen: u64,
    /// Active delta recorder; `Some` while a transaction (or the rolling
    /// incremental-audit recorder) is collecting mutations.
    recorder: Option<Delta>,
    /// Lazily built dependency graph and per-predicate validity snapshots.
    dep_cache: Mutex<DepCache>,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        KnowledgeBase::new()
    }
}

impl std::fmt::Debug for KnowledgeBase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnowledgeBase")
            .field("predicates", &self.preds.len())
            .field("clauses", &self.clause_count)
            .field("natives", &self.natives.len())
            .field("indexing", &self.indexing)
            .field("strict", &self.strict)
            .field("epoch", &self.epoch)
            .field("tabling", &self.tabling_enabled)
            .finish()
    }
}

impl KnowledgeBase {
    /// Empty knowledge base with indexing on and open-world (non-strict)
    /// call semantics.
    pub fn new() -> KnowledgeBase {
        KnowledgeBase {
            preds: FxHashMap::default(),
            natives: FxHashMap::default(),
            index_config: FxHashMap::default(),
            range_config: FxHashMap::default(),
            indexing: true,
            strict: false,
            clause_count: 0,
            epoch: 0,
            tabling_enabled: false,
            table_all: false,
            tabled: FxHashSet::default(),
            cycle_policy: CyclePolicy::Inductive,
            coinductive: FxHashSet::default(),
            table: AnswerTable::new(),
            generations: FxHashMap::default(),
            structural_gen: 0,
            recorder: None,
            dep_cache: Mutex::new(DepCache::default()),
        }
    }

    /// Record a change that can affect what is derivable: advance the
    /// epoch and drop the cached dependency graph and validity snapshots.
    /// Table entries built against an older epoch survive only if their
    /// recorded dependency generations still match (see
    /// [`crate::table::TableValidity`]).
    fn bump_epoch(&mut self) {
        self.epoch += 1;
        let cache = self.dep_cache.get_mut();
        cache.graph = None;
        cache.snapshots.clear();
        cache.sccs = None;
    }

    /// Record a change confined to one predicate's clauses (or native):
    /// advance its generation, then the epoch.
    fn bump_pred(&mut self, key: PredKey) {
        *self.generations.entry(key).or_insert(0) += 1;
        self.bump_epoch();
    }

    /// Record a structural-configuration change (indexing, index layout,
    /// strict mode): advance the structural generation, then the epoch.
    fn bump_structural(&mut self) {
        self.structural_gen += 1;
        self.bump_epoch();
    }

    /// The current modification epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The generation counter of one predicate (0 if never mutated).
    pub fn generation(&self, key: PredKey) -> u64 {
        self.generations.get(&key).copied().unwrap_or(0)
    }

    /// Every non-zero predicate generation counter, unordered. A serving
    /// layer captures this *before* a transaction runs so the resulting
    /// [`CommitRecord`] can carry the pre-commit generations of the
    /// predicates the commit dirtied (absent here ⇒ generation 0).
    pub fn generations(&self) -> impl Iterator<Item = (PredKey, u64)> + '_ {
        self.generations.iter().map(|(&k, &g)| (k, g))
    }

    /// The structural-configuration generation.
    pub fn structural_generation(&self) -> u64 {
        self.structural_gen
    }

    /// Overwrite the validity counters (per-predicate generations and the
    /// modification epoch) with values restored from a checkpoint image.
    /// Clause content must already have been re-asserted; this realigns
    /// the counters so the restored KB is [`KnowledgeBase::content_eq`]
    /// to the one the image was taken from, and drops any dependency
    /// snapshots cached during the re-assertion.
    pub(crate) fn restore_validity(
        &mut self,
        generations: impl IntoIterator<Item = (PredKey, u64)>,
        epoch: u64,
    ) {
        self.generations = generations.into_iter().collect();
        self.epoch = epoch;
        let cache = self.dep_cache.get_mut();
        cache.graph = None;
        cache.snapshots.clear();
        cache.sccs = None;
    }

    // ----- tabling ----------------------------------------------------------

    /// Master switch for tabled resolution. Off by default; turning it on
    /// makes the solver consult the answer table for predicates marked via
    /// [`KnowledgeBase::mark_tabled`] (or all of them under
    /// [`KnowledgeBase::set_table_all`]).
    pub fn set_tabling(&mut self, on: bool) {
        if self.tabling_enabled == on {
            return;
        }
        self.tabling_enabled = on;
    }

    /// Whether tabled resolution is enabled.
    pub fn tabling_enabled(&self) -> bool {
        self.tabling_enabled
    }

    /// Table every user predicate instead of only the marked ones (still
    /// gated on [`KnowledgeBase::set_tabling`]).
    pub fn set_table_all(&mut self, on: bool) {
        if self.table_all == on {
            return;
        }
        self.table_all = on;
    }

    /// Whether all user predicates are tabled.
    pub fn table_all(&self) -> bool {
        self.table_all
    }

    /// Opt one predicate into tabling. Marking is independent of the
    /// master switch, so meta-models can mark their expensive predicates
    /// unconditionally and the user decides with
    /// [`KnowledgeBase::set_tabling`].
    pub fn mark_tabled(&mut self, key: PredKey) {
        self.tabled.insert(key);
    }

    /// Should calls to this predicate go through the answer table?
    pub fn is_tabled(&self, key: PredKey) -> bool {
        self.tabling_enabled && (self.table_all || self.tabled.contains(&key))
    }

    /// The shared answer table (diagnostics and the solver).
    pub fn table(&self) -> &AnswerTable {
        &self.table
    }

    /// Set the KB-wide default cycle policy for SLG evaluation. Changing
    /// it changes what recursive programs derive, so cached answer sets
    /// must not survive.
    pub fn set_cycle_policy(&mut self, policy: CyclePolicy) {
        if self.cycle_policy == policy {
            return;
        }
        self.cycle_policy = policy;
        self.bump_structural();
    }

    /// The KB-wide default cycle policy.
    pub fn cycle_policy(&self) -> CyclePolicy {
        self.cycle_policy
    }

    /// Mark one predicate coinductive: a recursive re-entry on its own
    /// call pattern succeeds (greatest-fixpoint reading) instead of
    /// failing, whatever the KB-wide policy says.
    pub fn mark_coinductive(&mut self, key: PredKey) {
        if self.coinductive.insert(key) {
            self.bump_structural();
        }
    }

    /// The cycle policy in force for calls to `key`.
    pub fn cycle_policy_of(&self, key: PredKey) -> CyclePolicy {
        if self.coinductive.contains(&key) {
            CyclePolicy::Coinductive
        } else {
            self.cycle_policy
        }
    }

    /// Enable/disable argument indexing. With indexing off, every call
    /// scans all clauses of the predicate — the 1986 baseline used by
    /// `bench_indexing`.
    pub fn set_indexing(&mut self, on: bool) {
        if self.indexing == on {
            return;
        }
        self.indexing = on;
        self.bump_structural();
    }

    /// Whether argument indexing is enabled.
    pub fn indexing(&self) -> bool {
        self.indexing
    }

    /// Configure which argument positions of `key` are indexed. Each call
    /// consults every configured index and follows the most selective one.
    /// The default is `[0]` (classic first-argument indexing). Positions
    /// beyond the predicate's arity are ignored.
    pub fn set_index_args(&mut self, key: PredKey, positions: &[usize]) {
        let positions: Vec<u16> = positions
            .iter()
            .filter(|&&p| p < key.arity as usize)
            .map(|&p| p as u16)
            .collect();
        if self.index_positions(key) == positions {
            return;
        }
        self.index_config.insert(key, positions.clone());
        if let Some(entry) = self.preds.get_mut(&key) {
            let entry = Arc::make_mut(entry);
            entry.indexes = positions
                .iter()
                .map(|&pos| ArgIndex {
                    pos,
                    ..ArgIndex::default()
                })
                .collect();
            entry.rebuild_indexes();
        }
        self.bump_structural();
    }

    fn index_positions(&self, key: PredKey) -> Vec<u16> {
        self.index_config.get(&key).cloned().unwrap_or_else(|| {
            if key.arity > 0 {
                vec![0]
            } else {
                Vec::new()
            }
        })
    }

    /// Configure the full set of range indexes over `key` (replacing any
    /// previous configuration). Paths pointing past the predicate's arity
    /// are ignored.
    pub fn set_range_indexes(&mut self, key: PredKey, specs: Vec<RangeSpec>) {
        let specs: Vec<RangeSpec> = specs
            .into_iter()
            .filter(|spec| match spec {
                RangeSpec::Interval(p) => (p.pos as usize) < key.arity as usize,
                RangeSpec::Grid { x, y, .. } => {
                    (x.pos as usize) < key.arity as usize && (y.pos as usize) < key.arity as usize
                }
            })
            .collect();
        if self.range_specs(key) == specs {
            return;
        }
        if let Some(entry) = self.preds.get_mut(&key) {
            let entry = Arc::make_mut(entry);
            entry.ranges = specs
                .iter()
                .map(|spec| RangeIndex::new(spec.clone()))
                .collect();
            entry.rebuild_indexes();
        }
        self.range_config.insert(key, specs);
        self.bump_structural();
    }

    /// Add one range index over `key`, keeping any already configured.
    /// Idempotent: re-adding an identical spec is a no-op (meta-model
    /// setup hooks may run more than once).
    pub fn add_range_index(&mut self, key: PredKey, spec: RangeSpec) {
        let mut specs = self.range_specs(key);
        if specs.contains(&spec) {
            return;
        }
        specs.push(spec);
        self.set_range_indexes(key, specs);
    }

    /// The range-index specs configured for `key`.
    pub fn range_specs(&self, key: PredKey) -> Vec<RangeSpec> {
        self.range_config.get(&key).cloned().unwrap_or_default()
    }

    /// In strict mode, calling a predicate with no clauses and no native
    /// implementation is an error; in the default open-world mode it simply
    /// fails (the fact is "undefined", §III.A).
    pub fn set_strict(&mut self, on: bool) {
        if self.strict == on {
            return;
        }
        self.strict = on;
        self.bump_structural();
    }

    /// Whether strict unknown-predicate mode is enabled.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// Total number of stored clauses.
    pub fn clause_count(&self) -> usize {
        self.clause_count
    }

    /// Number of predicates with at least one clause.
    pub fn predicate_count(&self) -> usize {
        self.preds.len()
    }

    /// Assert a ground or universally quantified fact into the root group.
    pub fn assert_fact(&mut self, head: Term) {
        self.assert_clause_in(GroupId::root(), head, Term::atom("true"));
    }

    /// Assert `head :- body` into the root group.
    pub fn assert_clause(&mut self, head: Term, body: Term) {
        self.assert_clause_in(GroupId::root(), head, body);
    }

    /// Assert `head :- body` into `group`.
    ///
    /// # Panics
    ///
    /// Panics when the head is not callable or its arity exceeds
    /// [`PredKey::MAX_ARITY`]; use
    /// [`KnowledgeBase::try_assert_clause_in`] when the clause comes from
    /// untrusted input (a loader, the REPL).
    pub fn assert_clause_in(&mut self, group: GroupId, head: Term, body: Term) {
        if let Err(e) = self.try_assert_clause_in(group, head, body) {
            panic!("{e}");
        }
    }

    /// Assert `head :- body` into `group`, reporting an uncallable or
    /// oversized head as an error instead of panicking.
    pub fn try_assert_clause_in(
        &mut self,
        group: GroupId,
        head: Term,
        body: Term,
    ) -> EngineResult<()> {
        let Some(key) = PredKey::of_term(&head) else {
            return Err(match (head.functor(), head.arity()) {
                // Callable shape, but the arity doesn't fit a PredKey.
                (Some(name), Some(arity)) => EngineError::ArityOverflow { name, arity },
                _ => EngineError::UncallableHead { head },
            });
        };
        let clause = Arc::new(Clause::new(head, body, group));
        let positions = self.index_positions(key);
        let specs = self.range_specs(key);
        let entry = self
            .preds
            .entry(key)
            .or_insert_with(|| Arc::new(PredEntry::new(&positions, &specs)));
        Arc::make_mut(entry).push(Arc::clone(&clause));
        self.clause_count += 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(DeltaOp::Assert { key, clause });
        }
        self.bump_pred(key);
        Ok(())
    }

    /// Retract every clause belonging to `group`, across all predicates.
    /// Returns the number of clauses removed.
    pub fn retract_group(&mut self, group: GroupId) -> usize {
        let mut removed: Vec<(PredKey, usize, Arc<Clause>)> = Vec::new();
        for (key, entry) in self.preds.iter_mut() {
            let before = removed.len();
            for (pos, clause) in entry.clauses.iter().enumerate() {
                if clause.group == group {
                    removed.push((*key, pos, Arc::clone(clause)));
                }
            }
            if removed.len() != before {
                let positions: Vec<u32> = removed[before..]
                    .iter()
                    .map(|(_, p, _)| *p as u32)
                    .collect();
                let entry = Arc::make_mut(entry);
                entry.remove_index_positions(&positions);
                entry.clauses.retain(|c| c.group != group);
            }
        }
        self.preds.retain(|_, e| !e.clauses.is_empty());
        let n = removed.len();
        self.clause_count -= n;
        if n > 0 {
            let touched: FxHashSet<PredKey> = removed.iter().map(|(k, _, _)| *k).collect();
            if let Some(rec) = self.recorder.as_mut() {
                rec.push(DeltaOp::RetractGroup { group, removed });
            }
            for key in touched {
                *self.generations.entry(key).or_insert(0) += 1;
            }
            self.bump_epoch();
        }
        n
    }

    /// Retract the first stored *fact* (clause with body `true`) whose
    /// head is structurally equal to `head`. Returns whether one was
    /// removed. This is the engine-level support for withdrawing a basic
    /// fact when the data it recorded is revised.
    pub fn retract_fact(&mut self, head: &Term) -> bool {
        let Some(key) = PredKey::of_term(head) else {
            return false;
        };
        let Some(entry) = self.preds.get_mut(&key) else {
            return false;
        };
        let truth = Term::atom("true");
        let Some(pos) = entry
            .clauses
            .iter()
            .position(|c| c.body == truth && c.head == *head)
        else {
            return false;
        };
        let entry = Arc::make_mut(entry);
        entry.remove_index_positions(&[pos as u32]);
        let clause = entry.clauses.remove(pos);
        if entry.clauses.is_empty() {
            self.preds.remove(&key);
        }
        self.clause_count -= 1;
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(DeltaOp::RetractFact { key, pos, clause });
        }
        self.bump_pred(key);
        true
    }

    /// Retract all clauses of one predicate; returns how many were removed.
    pub fn retract_predicate(&mut self, key: PredKey) -> usize {
        match self.preds.remove(&key) {
            Some(entry) => {
                let n = entry.clauses.len();
                self.clause_count -= n;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(DeltaOp::RetractPredicate {
                        key,
                        clauses: entry.clauses.clone(),
                    });
                }
                self.bump_pred(key);
                n
            }
            None => 0,
        }
    }

    /// Does this group currently have any clauses?
    pub fn group_active(&self, group: GroupId) -> bool {
        self.preds
            .values()
            .any(|e| e.clauses.iter().any(|c| c.group == group))
    }

    // ----- transactions & deltas -------------------------------------------

    /// Start recording mutations into a [`Delta`]. Idempotent: if a
    /// recorder is already active, the existing log keeps accumulating
    /// (transaction marks are positions into it, see
    /// [`KnowledgeBase::delta_len`]).
    pub fn begin_delta(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(Delta::new());
        }
    }

    /// Is a delta recorder active?
    pub fn recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// Number of operations recorded so far (0 when not recording). Use as
    /// a transaction mark for [`KnowledgeBase::delta_since`] /
    /// [`KnowledgeBase::rollback_to`].
    pub fn delta_len(&self) -> usize {
        self.recorder.as_ref().map_or(0, Delta::len)
    }

    /// The operations recorded since `mark` (a previous
    /// [`KnowledgeBase::delta_len`]), as a standalone [`Delta`]. The
    /// recorder keeps running.
    pub fn delta_since(&self, mark: usize) -> Delta {
        self.recorder
            .as_ref()
            .map(|d| d.tail_from(mark))
            .unwrap_or_default()
    }

    /// Take everything recorded so far, leaving the recorder running and
    /// empty (the rolling-recorder mode the incremental audit uses).
    pub fn drain_delta(&mut self) -> Delta {
        self.recorder
            .as_mut()
            .map(Delta::drain_ops)
            .unwrap_or_default()
    }

    /// Stop recording and return the accumulated delta (`None` if no
    /// recorder was active).
    pub fn end_delta(&mut self) -> Option<Delta> {
        self.recorder.take()
    }

    /// Undo every recorded operation past `mark`, newest first, restoring
    /// the exact prior clause store (including clause positions — solution
    /// order is observable). Returns the number of operations undone. The
    /// recorder stays active, truncated to `mark`. Generations of the
    /// touched predicates are bumped, never restored: table entries built
    /// *during* the rolled-back window must not come back to life.
    pub fn rollback_to(&mut self, mark: usize) -> usize {
        let Some(mut rec) = self.recorder.take() else {
            return 0;
        };
        let mut touched: FxHashSet<PredKey> = FxHashSet::default();
        let mut undone = 0;
        while rec.len() > mark {
            let Some(op) = rec.pop() else {
                break;
            };
            undone += 1;
            self.unapply_op(op, &mut touched);
        }
        self.recorder = Some(rec);
        if undone > 0 {
            for key in touched {
                *self.generations.entry(key).or_insert(0) += 1;
            }
            self.bump_epoch();
        }
        undone
    }

    /// Undo one recorded operation, restoring the exact prior clause
    /// store (positions included). Collects the touched predicates into
    /// `touched`; generation/epoch accounting is the caller's job — the
    /// rollback path *bumps* them while the snapshot-reconstruction path
    /// *restores* recorded values.
    fn unapply_op(&mut self, op: DeltaOp, touched: &mut FxHashSet<PredKey>) {
        match op {
            DeltaOp::Assert { key, .. } => {
                touched.insert(key);
                if let Some(entry) = self.preds.get_mut(&key) {
                    let entry = Arc::make_mut(entry);
                    entry.clauses.pop();
                    entry.remove_index_positions(&[entry.clauses.len() as u32]);
                    if entry.clauses.is_empty() {
                        self.preds.remove(&key);
                    }
                    self.clause_count -= 1;
                }
            }
            DeltaOp::RetractFact { key, pos, clause } => {
                touched.insert(key);
                self.insert_clause_at(key, pos, clause);
            }
            DeltaOp::RetractGroup { removed, .. } => {
                // Positions ascend per predicate, so reinserting in
                // recorded order restores the original interleaving.
                for (key, pos, clause) in removed {
                    touched.insert(key);
                    self.insert_clause_at(key, pos, clause);
                }
            }
            DeltaOp::RetractPredicate { key, clauses } => {
                touched.insert(key);
                for (pos, clause) in clauses.into_iter().enumerate() {
                    self.insert_clause_at(key, pos, clause);
                }
            }
        }
    }

    /// Re-apply one committed operation (WAL replay). Mirrors the original
    /// mutation exactly — clause positions *and* generation/epoch
    /// accounting — so replaying a committed delta from the same base
    /// state reproduces the live knowledge base: same clauses in the same
    /// order, same incremental indexes, same table-validity counters.
    pub fn apply_op(&mut self, op: &DeltaOp) {
        match op {
            DeltaOp::Assert { key, clause } => {
                let positions = self.index_positions(*key);
                let specs = self.range_specs(*key);
                let entry = self
                    .preds
                    .entry(*key)
                    .or_insert_with(|| Arc::new(PredEntry::new(&positions, &specs)));
                Arc::make_mut(entry).push(Arc::clone(clause));
                self.clause_count += 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(op.clone());
                }
                self.bump_pred(*key);
            }
            DeltaOp::RetractFact { key, pos, .. } => {
                let Some(entry) = self.preds.get_mut(key) else {
                    return;
                };
                if *pos >= entry.clauses.len() {
                    return;
                }
                let entry = Arc::make_mut(entry);
                entry.remove_index_positions(&[*pos as u32]);
                entry.clauses.remove(*pos);
                if entry.clauses.is_empty() {
                    self.preds.remove(key);
                }
                self.clause_count -= 1;
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(op.clone());
                }
                self.bump_pred(*key);
            }
            DeltaOp::RetractGroup { removed, .. } => {
                let mut by_pred: FxHashMap<PredKey, Vec<u32>> = FxHashMap::default();
                for (key, pos, _) in removed {
                    by_pred.entry(*key).or_default().push(*pos as u32);
                }
                for (key, positions) in &mut by_pred {
                    positions.sort_unstable();
                    let Some(entry) = self.preds.get_mut(key) else {
                        continue;
                    };
                    let entry = Arc::make_mut(entry);
                    entry.remove_index_positions(positions);
                    for &p in positions.iter().rev() {
                        if (p as usize) < entry.clauses.len() {
                            entry.clauses.remove(p as usize);
                            self.clause_count -= 1;
                        }
                    }
                    if entry.clauses.is_empty() {
                        self.preds.remove(key);
                    }
                }
                if let Some(rec) = self.recorder.as_mut() {
                    rec.push(op.clone());
                }
                for key in by_pred.keys() {
                    *self.generations.entry(*key).or_insert(0) += 1;
                }
                self.bump_epoch();
            }
            DeltaOp::RetractPredicate { key, .. } => {
                if let Some(entry) = self.preds.remove(key) {
                    self.clause_count -= entry.clauses.len();
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.push(op.clone());
                    }
                    self.bump_pred(*key);
                }
            }
        }
    }

    // ----- MVCC snapshots ---------------------------------------------------

    /// A read-only view of the current state, built in O(#predicates):
    /// every clause entry is shared behind its `Arc` (writers copy-on-write
    /// the entries they later touch), the answer table is carried over as a
    /// snapshot clone (hits against it are reported separately, see
    /// [`crate::table::TableStats::snapshot_hits`]), and the delta recorder
    /// is *not* carried — snapshots are for readers.
    pub fn snapshot(&self) -> KnowledgeBase {
        KnowledgeBase {
            preds: self.preds.clone(),
            natives: self.natives.clone(),
            index_config: self.index_config.clone(),
            range_config: self.range_config.clone(),
            indexing: self.indexing,
            strict: self.strict,
            clause_count: self.clause_count,
            epoch: self.epoch,
            tabling_enabled: self.tabling_enabled,
            table_all: self.table_all,
            tabled: self.tabled.clone(),
            cycle_policy: self.cycle_policy,
            coinductive: self.coinductive.clone(),
            table: self.table.snapshot_clone(),
            generations: self.generations.clone(),
            structural_gen: self.structural_gen,
            recorder: None,
            dep_cache: Mutex::new(DepCache::default()),
        }
    }

    /// Materialize the state as of an older commit by *un*-applying the
    /// commits that came after it: `newer` holds every
    /// [`CommitRecord`] with a sequence number greater than the pinned
    /// one, oldest first. The reconstruction starts from a head snapshot
    /// (shared entries, no deep copy) and walks the chain newest-first,
    /// inverting each operation and restoring each record's pre-commit
    /// generation counters and epoch — so cached answers produced *after*
    /// the pinned commit fail validation against the snapshot while
    /// answers that were valid at pin time survive.
    pub fn snapshot_at(&self, newer: &[CommitRecord]) -> KnowledgeBase {
        let mut kb = self.snapshot();
        let mut touched = FxHashSet::default();
        for record in newer.iter().rev() {
            for op in record.delta.ops().iter().rev() {
                kb.unapply_op(op.clone(), &mut touched);
            }
            for &(key, gen) in &record.gens_before {
                kb.generations.insert(key, gen);
            }
            kb.epoch = record.epoch_before;
        }
        kb
    }

    /// Structural equality of the stored content: same predicates with the
    /// same clause lists in the same order (clause positions are observable
    /// through solution order), and the same effective generation counters
    /// and epoch. This is the crash-recovery equivalence the WAL tests
    /// assert: `recover(log)` must be `content_eq` to the live KB.
    pub fn content_eq(&self, other: &KnowledgeBase) -> bool {
        if self.clause_count != other.clause_count
            || self.epoch != other.epoch
            || self.preds.len() != other.preds.len()
        {
            return false;
        }
        for (key, entry) in &self.preds {
            let Some(theirs) = other.preds.get(key) else {
                return false;
            };
            if entry.clauses.len() != theirs.clauses.len() {
                return false;
            }
            let same = entry.clauses.iter().zip(&theirs.clauses).all(|(a, b)| {
                a.head == b.head && a.body == b.body && a.group == b.group && a.n_vars == b.n_vars
            });
            if !same {
                return false;
            }
        }
        let keys: FxHashSet<PredKey> = self
            .generations
            .keys()
            .chain(other.generations.keys())
            .copied()
            .collect();
        keys.into_iter()
            .all(|k| self.generation(k) == other.generation(k))
    }

    /// Reinsert a clause at a recorded position (rollback support).
    fn insert_clause_at(&mut self, key: PredKey, pos: usize, clause: Arc<Clause>) {
        let positions = self.index_positions(key);
        let specs = self.range_specs(key);
        let entry = Arc::make_mut(
            self.preds
                .entry(key)
                .or_insert_with(|| Arc::new(PredEntry::new(&positions, &specs))),
        );
        let pos = pos.min(entry.clauses.len());
        entry.insert_index_position(pos as u32, &clause.head);
        entry.clauses.insert(pos, clause);
        self.clause_count += 1;
    }

    // ----- dependency snapshots --------------------------------------------

    /// The static dependency graph of the current clauses. Built lazily
    /// and cached until the next mutation.
    pub fn dep_graph(&self) -> Arc<DepGraph> {
        let mut cache = self.dep_cache.lock();
        if let Some(graph) = &cache.graph {
            return Arc::clone(graph);
        }
        let graph = Arc::new(DepGraph::build(self));
        cache.graph = Some(Arc::clone(&graph));
        graph
    }

    /// The validity snapshot a table entry for `key` should be built
    /// against (and checked against on lookup): the current epoch plus the
    /// generations of every predicate in `key`'s static dependency
    /// closure. Cached per predicate until the next mutation.
    pub fn dep_snapshot(&self, key: PredKey) -> Arc<TableValidity> {
        if let Some(snap) = self.dep_cache.lock().snapshots.get(&key) {
            return Arc::clone(snap);
        }
        let graph = self.dep_graph();
        // Predicates in one recursive strongly-connected component were
        // saturated jointly, so their snapshots are built over the whole
        // component's reachability and shared — one closure walk, and a
        // mutation anywhere in the component invalidates every member.
        let members = self.scc_members(key);
        let closure = match &members {
            Some(component) => graph.closure_of_all(component),
            None => graph.closure(key, ArgSpec::Any),
        };
        let snap = if closure.dynamic() {
            Arc::new(TableValidity::epoch_only(self.epoch))
        } else {
            let mut deps: Vec<(PredKey, u64)> =
                closure.preds().map(|k| (k, self.generation(k))).collect();
            deps.sort_by_key(|(k, _)| (k.name, k.arity));
            Arc::new(TableValidity {
                epoch: self.epoch,
                structural: self.structural_gen,
                dynamic: false,
                deps: Arc::new(deps),
            })
        };
        let mut cache = self.dep_cache.lock();
        cache.snapshots.insert(key, Arc::clone(&snap));
        if let Some(component) = members {
            for member in component {
                cache.snapshots.insert(member, Arc::clone(&snap));
            }
        }
        snap
    }

    /// The recursive strongly-connected components of the current call
    /// graph (lazily computed from the dependency graph, cached until the
    /// next mutation). Predicates absent from every component are not
    /// recursive.
    pub fn recursive_sccs(&self) -> Arc<Vec<Vec<PredKey>>> {
        if let Some((components, _)) = &self.dep_cache.lock().sccs {
            return Arc::clone(components);
        }
        let components = Arc::new(self.dep_graph().sccs());
        let mut membership = FxHashMap::default();
        for (i, component) in components.iter().enumerate() {
            for &member in component {
                membership.insert(member, i);
            }
        }
        self.dep_cache.lock().sccs = Some((Arc::clone(&components), membership));
        components
    }

    /// The members of `key`'s recursive component, if it has one.
    fn scc_members(&self, key: PredKey) -> Option<Vec<PredKey>> {
        let components = self.recursive_sccs();
        let cache = self.dep_cache.lock();
        let (_, membership) = cache.sccs.as_ref().expect("recursive_sccs fills the cache");
        membership.get(&key).map(|&i| components[i].clone())
    }

    /// Does `key` participate in a recursive cycle (directly or mutually)?
    pub fn is_recursive_pred(&self, key: PredKey) -> bool {
        self.recursive_sccs();
        let cache = self.dep_cache.lock();
        cache
            .sccs
            .as_ref()
            .is_some_and(|(_, membership)| membership.contains_key(&key))
    }

    /// Register a native predicate. Natives shadow clauses: if a predicate
    /// has a native implementation, its clauses (if any) are ignored.
    pub fn register_native(
        &mut self,
        name: &str,
        arity: usize,
        f: impl Fn(&mut BindStore, &[Term]) -> NativeOutcome + Send + Sync + 'static,
    ) {
        let key = PredKey::new(name, arity);
        self.natives.insert(key, Arc::new(f));
        self.bump_pred(key);
    }

    /// Look up a native implementation.
    pub fn native(&self, key: PredKey) -> Option<&NativeFn> {
        self.natives.get(&key)
    }

    /// Does the predicate have clauses or a native implementation?
    pub fn defined(&self, key: PredKey) -> bool {
        self.natives.contains_key(&key) || self.preds.contains_key(&key)
    }

    /// Candidate clauses for a call, in assertion order.
    ///
    /// With indexing enabled, every configured hash index whose call
    /// argument is bound is consulted and the most selective one wins;
    /// every applicable range index (exact numeric key, or an active
    /// `range_call` bound on an unbound variable in `bounds`) is
    /// *intersected* with it. No applicable index — or indexing off —
    /// returns all clauses of the predicate, borrowed.
    pub fn candidates<'kb>(
        &'kb self,
        key: PredKey,
        store: &BindStore,
        args: &[Term],
        bounds: &BoundSet,
    ) -> Candidates<'kb> {
        let Some(entry) = self.preds.get(&key) else {
            return Candidates::All(&[]);
        };
        if !self.indexing {
            return Candidates::All(&entry.clauses);
        }
        entry.stats.consults.fetch_add(1, Ordering::Relaxed);
        // Pick the most selective applicable hash index.
        let mut best: Option<(&[u32], &[u32])> = None;
        for index in &entry.indexes {
            let Some(arg) = args.get(index.pos as usize) else {
                continue;
            };
            let Some(k) = ArgKey::of_call(store, arg) else {
                continue;
            };
            let keyed = index.by_key.get(&k).map(Vec::as_slice).unwrap_or(&[]);
            let vars = index.var_clauses.as_slice();
            let size = keyed.len() + vars.len();
            if best.is_none_or(|(bk, bv)| size < bk.len() + bv.len()) {
                best = Some((keyed, vars));
            }
        }
        // Collect every range selection that applies to this call.
        let mut range_sels: Vec<Vec<u32>> = Vec::new();
        for rindex in &entry.ranges {
            if let Some(sel) = rindex.select(store, args, bounds) {
                range_sels.push(sel);
            }
        }
        if best.is_none() && range_sels.is_empty() {
            entry.stats.scans.fetch_add(1, Ordering::Relaxed);
            return Candidates::All(&entry.clauses);
        }
        if best.is_some() {
            entry.stats.hash_hits.fetch_add(1, Ordering::Relaxed);
        }
        if !range_sels.is_empty() {
            entry.stats.range_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut pos = PosList::default();
        if range_sels.is_empty() {
            // Hash selection only: merge the two sorted position lists
            // straight into the (usually inline) output — assertion order
            // is observable through solution order.
            let (keyed, vars) = best.expect("checked non-empty selection");
            let (mut i, mut j) = (0, 0);
            while i < keyed.len() || j < vars.len() {
                match (keyed.get(i), vars.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a < b {
                            pos.push(a);
                            i += 1;
                        } else {
                            pos.push(b);
                            j += 1;
                        }
                    }
                    (Some(&a), None) => {
                        pos.push(a);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        pos.push(b);
                        j += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
        } else {
            // Intersect the hash selection (if any) with every range
            // selection; all lists ascend, so the result ascends.
            let mut sels = range_sels.into_iter();
            let mut acc: Vec<u32> = match best {
                Some((keyed, vars)) => union_sorted(keyed, vars),
                None => sels.next().expect("checked non-empty selection"),
            };
            for sel in sels {
                acc = intersect_sorted(&acc, &sel);
                if acc.is_empty() {
                    break;
                }
            }
            for p in acc {
                pos.push(p);
            }
        }
        entry
            .stats
            .pruned
            .fetch_add((entry.clauses.len() - pos.len()) as u64, Ordering::Relaxed);
        Candidates::Picked {
            clauses: &entry.clauses,
            pos,
        }
    }

    /// Verify every index against a from-scratch rebuild of the same
    /// clause list — the incremental-maintenance invariant the property
    /// tests lean on. Returns a description of the first divergence.
    pub fn check_index_integrity(&self) -> Result<(), String> {
        for (key, entry) in &self.preds {
            let positions = self.index_positions(*key);
            let specs = self.range_specs(*key);
            let mut fresh = PredEntry::new(&positions, &specs);
            for clause in &entry.clauses {
                fresh.push(Arc::clone(clause));
            }
            for (live, want) in entry.indexes.iter().zip(&fresh.indexes) {
                if live.pos != want.pos
                    || live.var_clauses != want.var_clauses
                    || live.by_key != want.by_key
                {
                    return Err(format!("hash index arg {} of {key} diverged", live.pos));
                }
            }
            if entry.ranges.len() != fresh.ranges.len() {
                return Err(format!("range index count of {key} diverged"));
            }
            for (live, want) in entry.ranges.iter().zip(&fresh.ranges) {
                if live.spec != want.spec
                    || live.unkeyed != want.unkeyed
                    || live.store != want.store
                {
                    return Err(format!("range index {} of {key} diverged", live.spec));
                }
            }
        }
        Ok(())
    }

    /// Per-predicate index configuration and usage counters, sorted by
    /// predicate name and arity.
    pub fn index_stats(&self) -> Vec<IndexReport> {
        let mut out: Vec<IndexReport> = self
            .preds
            .iter()
            .map(|(key, entry)| IndexReport {
                pred: *key,
                clauses: entry.clauses.len(),
                hash_positions: entry.indexes.iter().map(|i| i.pos).collect(),
                range_specs: entry.ranges.iter().map(|r| r.spec.clone()).collect(),
                consults: entry.stats.consults.load(Ordering::Relaxed),
                hash_hits: entry.stats.hash_hits.load(Ordering::Relaxed),
                range_hits: entry.stats.range_hits.load(Ordering::Relaxed),
                pruned: entry.stats.pruned.load(Ordering::Relaxed),
                scans: entry.stats.scans.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| {
            (a.pred.name.as_str(), a.pred.arity).cmp(&(b.pred.name.as_str(), b.pred.arity))
        });
        out
    }

    /// All clauses of a predicate, in assertion order (diagnostics, tests).
    pub fn clauses_of(&self, key: PredKey) -> Vec<Arc<Clause>> {
        self.preds
            .get(&key)
            .map(|e| e.clauses.clone())
            .unwrap_or_default()
    }

    /// Iterate over every `(PredKey, clause)` pair (diagnostics).
    pub fn iter_clauses(&self) -> impl Iterator<Item = (PredKey, &Arc<Clause>)> + '_ {
        self.preds
            .iter()
            .flat_map(|(k, e)| e.clauses.iter().map(move |c| (*k, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(name: &str, args: Vec<Term>) -> Term {
        Term::pred(name, args)
    }

    fn cands(kb: &KnowledgeBase, key: PredKey, args: Vec<Term>) -> Vec<Arc<Clause>> {
        kb.candidates(key, &BindStore::new(), &args, &BoundSet::default())
            .to_vec()
    }

    #[test]
    fn assert_and_count() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("road", vec![Term::atom("s1")]));
        kb.assert_fact(fact("road", vec![Term::atom("s2")]));
        assert_eq!(kb.clause_count(), 2);
        assert_eq!(kb.predicate_count(), 1);
    }

    #[test]
    fn candidates_filtered_by_first_arg() {
        let mut kb = KnowledgeBase::new();
        for i in 0..100 {
            kb.assert_fact(fact("road", vec![Term::atom(&format!("s{i}"))]));
        }
        let key = PredKey::new("road", 1);
        assert_eq!(cands(&kb, key, vec![Term::atom("s42")]).len(), 1);
        assert_eq!(cands(&kb, key, vec![Term::var(0)]).len(), 100);
    }

    #[test]
    fn var_headed_clauses_always_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        kb.assert_clause(fact("p", vec![Term::var(0)]), Term::atom("true"));
        kb.assert_fact(fact("p", vec![Term::atom("b")]));
        let got = cands(&kb, PredKey::new("p", 1), vec![Term::atom("b")]);
        // The var-headed clause and the `b` clause, in assertion order.
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].head.args()[0], Term::var(0));
        assert_eq!(got[1].head.args()[0], Term::atom("b"));
    }

    #[test]
    fn unindexed_returns_everything() {
        let mut kb = KnowledgeBase::new();
        kb.set_indexing(false);
        for i in 0..10 {
            kb.assert_fact(fact("p", vec![Term::int(i)]));
        }
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(3)]).len(),
            10
        );
    }

    #[test]
    fn compound_first_arg_indexed_by_functor() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("h", vec![Term::pred("pt", vec![Term::int(1)])]));
        kb.assert_fact(fact("h", vec![Term::pred("iv", vec![Term::int(1)])]));
        let got = cands(
            &kb,
            PredKey::new("h", 1),
            vec![Term::pred("pt", vec![Term::var(0)])],
        );
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn multi_arg_indexing_picks_most_selective() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("h", 3);
        kb.set_index_args(key, &[0, 2]);
        // 100 facts share the first arg; third arg is unique.
        for i in 0..100 {
            kb.assert_fact(fact(
                "h",
                vec![
                    Term::atom("omega"),
                    Term::int(i),
                    Term::atom(&format!("o{i}")),
                ],
            ));
        }
        // First arg bound only: all 100.
        assert_eq!(
            cands(
                &kb,
                key,
                vec![Term::atom("omega"), Term::var(0), Term::var(1)]
            )
            .len(),
            100
        );
        // Third arg bound too: the unique one wins.
        assert_eq!(
            cands(
                &kb,
                key,
                vec![Term::atom("omega"), Term::var(0), Term::atom("o42")]
            )
            .len(),
            1
        );
    }

    #[test]
    fn list_head_indexing_discriminates() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("h", 2);
        kb.set_index_args(key, &[1]);
        for i in 0..50 {
            kb.assert_fact(fact(
                "h",
                vec![
                    Term::atom("site"),
                    Term::list(vec![Term::atom(&format!("s{i}")), Term::int(i)]),
                ],
            ));
        }
        let got = cands(
            &kb,
            key,
            vec![
                Term::atom("site"),
                Term::list(vec![Term::atom("s7"), Term::int(7)]),
            ],
        );
        assert_eq!(got.len(), 1);
        // A list headed by a variable matches everything.
        let got = cands(
            &kb,
            key,
            vec![Term::atom("site"), Term::cons(Term::var(0), Term::var(1))],
        );
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn index_config_applies_before_first_assertion() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("p", 2);
        kb.set_index_args(key, &[1]);
        kb.assert_fact(fact("p", vec![Term::atom("x"), Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::atom("x"), Term::int(2)]));
        assert_eq!(cands(&kb, key, vec![Term::var(0), Term::int(2)]).len(), 1);
    }

    #[test]
    fn call_args_deref_through_bindings() {
        let mut kb = KnowledgeBase::new();
        for i in 0..10 {
            kb.assert_fact(fact("p", vec![Term::int(i)]));
        }
        let mut store = BindStore::new();
        store.ensure(0);
        assert!(store.unify(&Term::var(0), &Term::int(3)));
        let got = kb.candidates(
            PredKey::new("p", 1),
            &store,
            &[Term::var(0)],
            &BoundSet::default(),
        );
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn group_retraction() {
        let mut kb = KnowledgeBase::new();
        let g = GroupId::named("cwa_meta_model");
        kb.assert_fact(fact("p", vec![Term::atom("base")]));
        kb.assert_clause_in(g, fact("p", vec![Term::atom("meta")]), Term::atom("true"));
        kb.assert_clause_in(g, fact("q", vec![Term::atom("meta")]), Term::atom("true"));
        assert!(kb.group_active(g));
        assert_eq!(kb.retract_group(g), 2);
        assert!(!kb.group_active(g));
        assert_eq!(kb.clause_count(), 1);
        // Index rebuilt: remaining clause still findable.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::atom("base")]).len(),
            1
        );
    }

    #[test]
    fn retract_fact_removes_exactly_one() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_clause(fact("p", vec![Term::int(3)]), Term::atom("q"));
        assert!(kb.retract_fact(&fact("p", vec![Term::int(1)])));
        assert!(!kb.retract_fact(&fact("p", vec![Term::int(1)])));
        // Rules are not facts: retract_fact must not touch them.
        assert!(!kb.retract_fact(&fact("p", vec![Term::int(3)])));
        assert_eq!(kb.clause_count(), 2);
        // Index rebuilt.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(2)]).len(),
            1
        );
    }

    #[test]
    fn retract_predicate_removes_all() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        assert_eq!(kb.retract_predicate(PredKey::new("p", 1)), 2);
        assert_eq!(kb.clause_count(), 0);
    }

    #[test]
    fn natives_are_found() {
        let mut kb = KnowledgeBase::new();
        kb.register_native("always", 0, |_, _| Ok(true));
        assert!(kb.native(PredKey::new("always", 0)).is_some());
        assert!(kb.defined(PredKey::new("always", 0)));
        assert!(!kb.defined(PredKey::new("nothing", 0)));
    }

    #[test]
    fn atom_fact_candidates() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(Term::atom("raining"));
        assert_eq!(cands(&kb, PredKey::new("raining", 0), vec![]).len(), 1);
    }

    #[test]
    fn pred_key_arity_is_checked_not_truncated() {
        // `p/65537` must not become `p/1`: the checked constructors reject
        // it instead of letting the arities collide modulo 2^16.
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY).is_some());
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY + 1).is_none());
        assert!(PredKey::try_new("p", PredKey::MAX_ARITY + 2).is_none());
        let args: Vec<Term> = (0..PredKey::MAX_ARITY as u32 + 2).map(Term::var).collect();
        let oversized = Term::pred("p", args);
        assert_eq!(PredKey::of_term(&oversized), None);
        assert_eq!(
            PredKey::of_term(&Term::pred("p", vec![Term::var(0)])),
            Some(PredKey::new("p", 1))
        );
    }

    #[test]
    #[should_panic(expected = "exceeds 65535")]
    fn pred_key_new_panics_on_oversized_arity() {
        let _ = PredKey::new("p", PredKey::MAX_ARITY + 1);
    }

    #[test]
    fn noop_config_setters_leave_epoch_alone() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        let epoch = kb.epoch();
        // Re-asserting the current values must not invalidate anything.
        kb.set_indexing(true);
        kb.set_strict(false);
        kb.set_tabling(false);
        kb.set_table_all(false);
        kb.set_index_args(PredKey::new("p", 1), &[0]);
        assert_eq!(kb.epoch(), epoch, "no-op setters bumped the epoch");
        assert_eq!(kb.structural_generation(), 0);
        // Actual changes still do.
        kb.set_strict(true);
        assert!(kb.epoch() > epoch);
        assert_eq!(kb.structural_generation(), 1);
    }

    #[test]
    fn try_assert_reports_bad_heads() {
        let mut kb = KnowledgeBase::new();
        let err = kb
            .try_assert_clause_in(GroupId::root(), Term::int(7), Term::atom("true"))
            .unwrap_err();
        assert!(matches!(err, crate::EngineError::UncallableHead { .. }));
        let args: Vec<Term> = (0..PredKey::MAX_ARITY as u32 + 1).map(Term::var).collect();
        let err = kb
            .try_assert_clause_in(GroupId::root(), Term::pred("p", args), Term::atom("true"))
            .unwrap_err();
        assert!(matches!(err, crate::EngineError::ArityOverflow { .. }));
        assert_eq!(kb.clause_count(), 0);
        assert_eq!(kb.epoch(), 0);
    }

    #[test]
    #[should_panic(expected = "not callable")]
    fn assert_clause_in_still_panics_on_uncallable_head() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause_in(GroupId::root(), Term::int(7), Term::atom("true"));
    }

    #[test]
    fn per_pred_generations_track_mutations() {
        let mut kb = KnowledgeBase::new();
        let p = PredKey::new("p", 1);
        let q = PredKey::new("q", 1);
        assert_eq!(kb.generation(p), 0);
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        assert_eq!(kb.generation(p), 1);
        assert_eq!(kb.generation(q), 0);
        kb.assert_fact(fact("q", vec![Term::atom("b")]));
        assert_eq!(kb.generation(p), 1);
        assert_eq!(kb.generation(q), 1);
        assert!(kb.retract_fact(&fact("p", vec![Term::atom("a")])));
        assert_eq!(kb.generation(p), 2);
        assert_eq!(kb.generation(q), 1);
    }

    #[test]
    fn dep_snapshot_survival_rule() {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(fact("a", vec![Term::var(0)]), fact("b", vec![Term::var(0)]));
        kb.assert_fact(fact("b", vec![Term::atom("x")]));
        kb.assert_fact(fact("unrelated", vec![Term::atom("y")]));
        let a = PredKey::new("a", 1);
        let before = kb.dep_snapshot(a);
        assert!(!before.dynamic);
        // Unrelated mutation: epoch moves, a's snapshot deps don't.
        kb.assert_fact(fact("unrelated", vec![Term::atom("z")]));
        let after = kb.dep_snapshot(a);
        assert_ne!(before.epoch, after.epoch);
        assert_eq!(before.deps, after.deps);
        // Mutation inside the closure: deps change.
        kb.assert_fact(fact("b", vec![Term::atom("w")]));
        let after2 = kb.dep_snapshot(a);
        assert_ne!(after.deps, after2.deps);
    }

    #[test]
    fn delta_records_and_rolls_back() {
        let mut kb = KnowledgeBase::new();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_fact(fact("p", vec![Term::int(3)]));
        let snapshot: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();

        kb.begin_delta();
        let mark = kb.delta_len();
        kb.assert_fact(fact("p", vec![Term::int(4)]));
        assert!(kb.retract_fact(&fact("p", vec![Term::int(2)])));
        let g = GroupId::named("pack");
        kb.assert_clause_in(g, fact("q", vec![Term::atom("m")]), Term::atom("true"));
        assert_eq!(kb.retract_group(g), 1);
        assert_eq!(kb.retract_predicate(PredKey::new("p", 1)), 3);
        let delta = kb.delta_since(mark);
        assert_eq!(delta.len(), 5);
        assert!(delta.dirty_preds().contains(&PredKey::new("p", 1)));
        assert!(delta.dirty_preds().contains(&PredKey::new("q", 1)));

        let undone = kb.rollback_to(mark);
        assert_eq!(undone, 5);
        assert_eq!(kb.delta_len(), mark);
        // Exact clause list (order included) restored.
        let restored: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        assert_eq!(restored, snapshot);
        assert_eq!(kb.clause_count(), 3);
        assert!(!kb.group_active(g));
        // Index still consistent after the positional reinserts.
        assert_eq!(
            cands(&kb, PredKey::new("p", 1), vec![Term::int(2)]).len(),
            1
        );
    }

    #[test]
    fn rollback_restores_interleaved_group_positions() {
        let mut kb = KnowledgeBase::new();
        let g = GroupId::named("meta");
        kb.assert_fact(fact("p", vec![Term::int(0)]));
        kb.assert_clause_in(g, fact("p", vec![Term::int(1)]), Term::atom("true"));
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        kb.assert_clause_in(g, fact("p", vec![Term::int(3)]), Term::atom("true"));
        let before: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        kb.begin_delta();
        assert_eq!(kb.retract_group(g), 2);
        kb.rollback_to(0);
        let after: Vec<Term> = kb
            .clauses_of(PredKey::new("p", 1))
            .iter()
            .map(|c| c.head.clone())
            .collect();
        assert_eq!(before, after);
        assert!(kb.group_active(g));
    }

    #[test]
    fn drain_delta_keeps_recorder_running() {
        let mut kb = KnowledgeBase::new();
        kb.begin_delta();
        kb.assert_fact(fact("p", vec![Term::int(1)]));
        let d = kb.drain_delta();
        assert_eq!(d.len(), 1);
        assert!(kb.recording());
        assert_eq!(kb.delta_len(), 0);
        kb.assert_fact(fact("p", vec![Term::int(2)]));
        assert_eq!(kb.delta_len(), 1);
        let rest = kb.end_delta().unwrap();
        assert_eq!(rest.len(), 1);
        assert!(!kb.recording());
    }

    #[test]
    fn out_of_range_index_positions_ignored() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("p", 1);
        kb.set_index_args(key, &[0, 5]);
        kb.assert_fact(fact("p", vec![Term::atom("a")]));
        assert_eq!(cands(&kb, key, vec![Term::atom("a")]).len(), 1);
    }

    /// Candidates under an active `range_call`-style bound on a variable.
    fn range_cands(
        kb: &KnowledgeBase,
        key: PredKey,
        args: Vec<Term>,
        var: u32,
        range: NumRange,
    ) -> Vec<Term> {
        let mut store = BindStore::new();
        store.ensure(var);
        let mut bounds = BoundSet::default();
        bounds.insert(Var(var), range);
        kb.candidates(key, &store, &args, &bounds)
            .iter()
            .map(|c| c.head.clone())
            .collect()
    }

    #[test]
    fn interval_index_prunes_by_variable_bound() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("t", 2);
        kb.set_index_args(key, &[]);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(0))]);
        for i in 0..20 {
            kb.assert_fact(fact("t", vec![Term::int(i), Term::atom("x")]));
        }
        // A rule head with a variable key stays a candidate for every call.
        kb.assert_clause(
            fact("t", vec![Term::var(0), Term::atom("r")]),
            Term::atom("true"),
        );
        let got = range_cands(
            &kb,
            key,
            vec![Term::var(7), Term::var(8)],
            7,
            NumRange::new(3.0, true, 6.0, false),
        );
        // (3, 6] plus the unkeyed rule, in assertion order.
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], fact("t", vec![Term::int(4), Term::atom("x")]));
        assert_eq!(got[2], fact("t", vec![Term::int(6), Term::atom("x")]));
        assert_eq!(got[3], fact("t", vec![Term::var(0), Term::atom("r")]));
        // Unconstrained variable: the index is inapplicable, full scan.
        assert_eq!(cands(&kb, key, vec![Term::var(9), Term::var(10)]).len(), 21);
        // Bound numeric key: degenerate point range.
        assert_eq!(cands(&kb, key, vec![Term::int(5), Term::var(10)]).len(), 2);
    }

    #[test]
    fn interval_index_follows_paths_and_rejects_mismatches() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("at", 1);
        kb.set_index_args(key, &[]);
        let path = ArgPath::arg(0).step("tat", 1, 0);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(path)]);
        for i in 0..10 {
            kb.assert_fact(fact("at", vec![Term::pred("tat", vec![Term::int(i)])]));
        }
        kb.assert_fact(fact("at", vec![Term::atom("any")]));
        let got = range_cands(
            &kb,
            key,
            vec![Term::pred("tat", vec![Term::var(3)])],
            3,
            NumRange::new(2.0, false, 4.0, true),
        );
        // [2, 4) keyed hits plus the `any` clause (unkeyed under the path).
        assert_eq!(got.len(), 3);
        // A call bound to a shape no keyed head can unify with selects the
        // unkeyed clauses only.
        let got = cands(&kb, key, vec![Term::atom("nowhere")]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].head, fact("at", vec![Term::atom("any")]));
    }

    #[test]
    fn grid_index_prunes_by_box() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("pt", 2);
        kb.set_index_args(key, &[]);
        kb.set_range_indexes(
            key,
            vec![RangeSpec::Grid {
                x: ArgPath::arg(0),
                y: ArgPath::arg(1),
                cell: 2.0,
            }],
        );
        for x in 0..10 {
            for y in 0..10 {
                kb.assert_fact(fact("pt", vec![Term::int(x), Term::int(y)]));
            }
        }
        let mut store = BindStore::new();
        store.ensure(1);
        let mut bounds = BoundSet::default();
        bounds.insert(Var(0), NumRange::new(2.0, false, 3.0, false));
        bounds.insert(Var(1), NumRange::new(7.0, false, 8.0, false));
        let got = kb
            .candidates(key, &store, &[Term::var(0), Term::var(1)], &bounds)
            .to_vec();
        // The grid over-approximates (whole cells), never under-selects.
        assert!(got.len() >= 4, "box must cover its hits");
        assert!(got.len() <= 36, "grid should prune most of the 100 points");
        for c in &got {
            let (Term::Int(_), Term::Int(_)) = (&c.head.args()[0], &c.head.args()[1]) else {
                panic!("grid candidates are points");
            };
        }
        // Exact point: both probes degenerate.
        let got = cands(&kb, key, vec![Term::int(5), Term::int(5)]);
        assert!(got.len() <= 4, "point lookup stays within one cell");
        assert!(got
            .iter()
            .any(|c| c.head == fact("pt", vec![Term::int(5), Term::int(5)])));
    }

    #[test]
    fn range_selection_intersects_hash_selection() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("r", 2);
        kb.set_index_args(key, &[0]);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(1))]);
        for m in ["m0", "m1"] {
            for v in 0..10 {
                kb.assert_fact(fact("r", vec![Term::atom(m), Term::int(v)]));
            }
        }
        let got = range_cands(
            &kb,
            key,
            vec![Term::atom("m0"), Term::var(2)],
            2,
            NumRange::new(4.0, true, f64::INFINITY, false),
        );
        // Hash (m0: 10) ∩ range (v > 4: 10) = 5.
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(
            |h| h.args()[0] == Term::atom("m0") && matches!(h.args()[1], Term::Int(v) if v > 4)
        ));
    }

    #[test]
    fn float_zero_keys_collapse_indexed_and_scanned() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("z", 1);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(0))]);
        kb.assert_fact(fact("z", vec![Term::float(-0.0)]));
        kb.assert_fact(fact("z", vec![Term::float(0.0)]));
        // -0.0 and 0.0 unify, so both hash and range lookups must return
        // both clauses whichever sign the call carries.
        for probe in [0.0, -0.0] {
            let got = cands(&kb, key, vec![Term::float(probe)]);
            assert_eq!(got.len(), 2, "±0.0 diverged for probe {probe}");
        }
        // Int and Float keys land in one numeric bucket; unification
        // decides (5 and 5.0 do not unify structurally).
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("n", 1);
        kb.set_index_args(key, &[]);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(0))]);
        kb.assert_fact(fact("n", vec![Term::int(5)]));
        kb.assert_fact(fact("n", vec![Term::float(5.0)]));
        assert_eq!(cands(&kb, key, vec![Term::int(5)]).len(), 2);
        assert_eq!(cands(&kb, key, vec![Term::float(5.0)]).len(), 2);
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("t", 2);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(1))]);
        let g = GroupId::named("pack");
        for i in 0..8 {
            kb.assert_fact(fact("t", vec![Term::atom("a"), Term::int(i)]));
        }
        kb.assert_clause_in(
            g,
            fact("t", vec![Term::atom("g"), Term::int(100)]),
            Term::atom("true"),
        );
        kb.assert_fact(fact("t", vec![Term::atom("b"), Term::int(8)]));
        kb.assert_clause_in(
            g,
            fact("t", vec![Term::atom("g"), Term::int(101)]),
            Term::atom("true"),
        );
        kb.check_index_integrity().expect("after asserts");
        assert!(kb.retract_fact(&fact("t", vec![Term::atom("a"), Term::int(3)])));
        kb.check_index_integrity().expect("after retract_fact");
        assert_eq!(kb.retract_group(g), 2);
        kb.check_index_integrity().expect("after retract_group");
        kb.begin_delta();
        let mark = kb.delta_len();
        kb.assert_fact(fact("t", vec![Term::atom("c"), Term::int(9)]));
        assert!(kb.retract_fact(&fact("t", vec![Term::atom("a"), Term::int(5)])));
        kb.retract_predicate(key);
        kb.check_index_integrity().expect("after retract_predicate");
        kb.rollback_to(mark);
        kb.check_index_integrity().expect("after rollback");
    }

    #[test]
    fn index_stats_report_hits_and_prunes() {
        let mut kb = KnowledgeBase::new();
        let key = PredKey::new("t", 1);
        kb.set_index_args(key, &[]);
        kb.set_range_indexes(key, vec![RangeSpec::Interval(ArgPath::arg(0))]);
        for i in 0..10 {
            kb.assert_fact(fact("t", vec![Term::int(i)]));
        }
        let _ = cands(&kb, key, vec![Term::int(3)]);
        let _ = cands(&kb, key, vec![Term::var(0)]);
        let report = kb
            .index_stats()
            .into_iter()
            .find(|r| r.pred == key)
            .expect("t/1 reported");
        assert_eq!(report.clauses, 10);
        assert_eq!(report.consults, 2);
        assert_eq!(report.range_hits, 1);
        assert_eq!(report.scans, 1);
        assert_eq!(report.pruned, 9);
        assert_eq!(report.range_specs.len(), 1);
    }
}
