//! Parallel query evaluation over a shared, read-only knowledge base.
//!
//! The engine's execution model makes an embarrassingly-parallel layer
//! cheap to state and prove correct:
//!
//! * A [`KnowledgeBase`] is *read-only during solving* — every mutation
//!   takes `&mut self` (and bumps the epoch), so handing `&KnowledgeBase`
//!   to N threads is data-race-free by construction. The shared interior
//!   state is all behind locks: the answer table ([`crate::AnswerTable`])
//!   sits in a `parking_lot::Mutex`, native predicates are
//!   `Arc<dyn Fn … + Send + Sync>`, and the global symbol interner is an
//!   `RwLock` (see the `const`-asserted bounds below).
//! * A [`Solver`] is deliberately *single-threaded* — its budget and
//!   counters are `Rc<Cell<_>>` — so each worker builds its own solver
//!   over the shared base rather than sharing one.
//!
//! [`ParallelSolver::solve_batch`] fans a batch of independent goals over
//! a configurable number of workers using [`std::thread::scope`]: scoped
//! threads borrow the knowledge base directly (no `Arc` cloning, no 'static
//! bound), and the scope's join is the natural merge point for per-worker
//! [`SolverStats`]. Workers pull goals off a shared atomic cursor, so an
//! expensive goal does not stall the rest of the batch behind a static
//! partition.
//!
//! Budgets: each worker receives `step_limit / workers` steps (remainder
//! distributed one-per-worker from the front), so the batch as a whole can
//! consume at most the configured global step limit — the same contract a
//! sequential solver gives one query stream. Depth limits are per worker;
//! nesting depth is a per-derivation property, not a shared resource.
//!
//! Tabling: workers share the knowledge base's answer table. The table
//! only ever serves *completed*, epoch-tagged answer sets behind its lock,
//! so concurrent readers preserve the PR-1 invariants; two workers racing
//! to complete the same call pattern both insert the identical answer set
//! (enumeration over an immutable base is deterministic) and last-write
//! simply wins.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::budget::{Budget, CancelToken};
use crate::chaos::{ChaosConfig, ChaosSink};
use crate::error::{EngineError, EngineResult};
use crate::kb::KnowledgeBase;
use crate::solver::{Solution, Solver, SolverStats};
use crate::term::Term;
use crate::trace::{NullSink, Profiler, TraceSink};

// The whole point of the audit: sharing a knowledge base (and its answer
// table) across scoped threads is only sound if these bounds hold, so
// state them where the compiler checks them on every build.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KnowledgeBase>();
    assert_send_sync::<crate::table::AnswerTable>();
    assert_send_sync::<ParallelSolver<'_>>();
};

/// Expand the four sink configurations (profiling × chaos) of one batch
/// entry point. A macro rather than a helper function because the `eval`
/// closure must be monomorphized per sink type and closures cannot be
/// generic over a type parameter.
macro_rules! dispatch_batch {
    ($self:expr, $goals:expr, $eval:expr) => {{
        let this = $self;
        match (&this.profile, this.chaos) {
            (Some(profile), None) => this.run_batch(
                $goals,
                $eval,
                Profiler::new,
                |p| profile.lock().absorb(&p),
                None,
            ),
            (None, None) => this.run_batch($goals, $eval, || NullSink, |_| {}, None),
            (Some(profile), Some(cfg)) => {
                let token = CancelToken::new();
                let mk = {
                    let token = token.clone();
                    move || ChaosSink::new(cfg, token.clone(), Profiler::new())
                };
                this.run_batch(
                    $goals,
                    $eval,
                    mk,
                    |s: ChaosSink<Profiler>| profile.lock().absorb(&s.into_inner()),
                    Some(token),
                )
            }
            (None, Some(cfg)) => {
                let token = CancelToken::new();
                let mk = {
                    let token = token.clone();
                    move || ChaosSink::new(cfg, token.clone(), NullSink)
                };
                this.run_batch($goals, $eval, mk, |_: ChaosSink| {}, Some(token))
            }
        }
    }};
}

/// A fan-out driver: solves batches of independent goals across worker
/// threads sharing one read-only [`KnowledgeBase`].
///
/// Construction is cheap; the threads live only for the duration of each
/// [`solve_batch`](Self::solve_batch) call (scoped, not pooled — see
/// DESIGN.md §6.8 for the trade-off).
pub struct ParallelSolver<'kb> {
    kb: &'kb KnowledgeBase,
    workers: usize,
    step_limit: u64,
    depth_limit: u32,
    stats: Mutex<SolverStats>,
    profile: Option<Mutex<Profiler>>,
    deadline: Option<Duration>,
    cancel: Option<CancelToken>,
    chaos: Option<ChaosConfig>,
}

impl<'kb> ParallelSolver<'kb> {
    /// A parallel solver with the default per-batch budget (the same
    /// limits [`Budget::default`] gives a sequential query stream).
    ///
    /// `workers == 0` is treated as 1.
    pub fn new(kb: &'kb KnowledgeBase, workers: usize) -> ParallelSolver<'kb> {
        let default = Budget::default();
        Self::with_budget(kb, workers, default.step_limit(), default.depth_limit())
    }

    /// A parallel solver with an explicit *global* budget: the per-worker
    /// step budgets sum to `step_limit`.
    pub fn with_budget(
        kb: &'kb KnowledgeBase,
        workers: usize,
        step_limit: u64,
        depth_limit: u32,
    ) -> ParallelSolver<'kb> {
        ParallelSolver {
            kb,
            workers: workers.max(1),
            step_limit,
            depth_limit,
            stats: Mutex::new(SolverStats::default()),
            profile: None,
            deadline: None,
            cancel: None,
            chaos: None,
        }
    }

    /// Bound each subsequent batch by wall-clock time as well as steps:
    /// the deadline instant is computed once per batch and shared by
    /// every worker, and an exceeded deadline fails the affected goals
    /// with [`EngineError::DeadlineExceeded`].
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Attach a cancellation token polled by every worker's budget, so one
    /// external trip (a Ctrl-C handler, a supervisor) stops the whole
    /// batch cooperatively with [`EngineError::Cancelled`] results.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Arm deterministic fault injection: each worker's trace sink is
    /// wrapped in a [`ChaosSink`] firing at the configured event index
    /// (counted per worker). See [`crate::chaos`].
    pub fn set_chaos(&mut self, chaos: Option<ChaosConfig>) {
        self.chaos = chaos;
    }

    /// Switch on per-predicate profiling for subsequent batches. Each
    /// worker profiles its own goals into a private [`Profiler`] sink,
    /// and the per-worker profiles are merged at the batch join point,
    /// exactly like [`SolverStats`] absorption.
    pub fn enable_profile(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(Mutex::new(Profiler::new()));
        }
    }

    /// A snapshot of the merged per-predicate profile across all batches
    /// run so far, or `None` when profiling was never enabled.
    pub fn profile(&self) -> Option<Profiler> {
        self.profile.as_ref().map(|p| p.lock().clone())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Merged execution counters across all workers of all batches this
    /// solver has run.
    pub fn stats(&self) -> SolverStats {
        *self.stats.lock()
    }

    /// The step budget worker `w` of `active` receives: an even split of
    /// the global limit, remainder spread one step each from the front.
    fn worker_budget(&self, w: usize, active: usize) -> Budget {
        let base = self.step_limit / active as u64;
        let extra = u64::from((w as u64) < self.step_limit % active as u64);
        Budget::new(base + extra, self.depth_limit)
    }

    /// Solve every goal in `goals` independently, returning one result per
    /// goal **in input order**. Goal `i`'s result is exactly what
    /// `Solver::solve_all(goals[i])` returns over the same base (same
    /// solutions, same solution order), regardless of worker count or
    /// scheduling — only wall-clock and the step-budget partition differ.
    pub fn solve_batch(&self, goals: &[Term]) -> Vec<EngineResult<Vec<Solution>>> {
        // The eval closure cannot be generic over the sink type, so each
        // sink configuration (profiling × chaos) gets its own (identical)
        // closure literal, spelled once by the macro below.
        dispatch_batch!(self, goals, |solver, goal| solver.solve_all(goal.clone()))
    }

    /// Batched provability: one `Solver::prove` outcome per goal, in input
    /// order.
    pub fn prove_batch(&self, goals: &[Term]) -> Vec<EngineResult<bool>> {
        dispatch_batch!(self, goals, |solver, goal| solver.prove(goal.clone()))
    }

    /// The shared fan-out loop. `mk_sink` builds one private trace sink
    /// per worker (sinks, like solvers, never cross threads); `merge` is
    /// called with each worker's sink at the join point; `extra_cancel` is
    /// an additional token attached to every worker budget (the chaos
    /// harness's channel from sink to budget).
    ///
    /// Each goal is evaluated inside `catch_unwind`: a panicking native
    /// (or injected fault) is converted into an
    /// [`EngineError::GoalPanicked`] result for *that goal only*. This is
    /// sound because everything a panic can interrupt is unwind-safe by
    /// construction — `DepthGuard` restores the depth counter in `Drop`,
    /// `RefCell` borrows release on unwind, the per-machine SLG answer
    /// forest (with any suspended subgoal frames) dies with its machine,
    /// and the shared answer table
    /// only ever stores *completed* answer sets (its lock is never held
    /// across an emission site, so a panic cannot poison a half-written
    /// entry). The worker then continues with the same solver and sink.
    fn run_batch<S: TraceSink, T: Send>(
        &self,
        goals: &[Term],
        eval: impl Fn(&Solver<'_, S>, &Term) -> EngineResult<T> + Sync,
        mk_sink: impl Fn() -> S + Sync,
        merge: impl Fn(S) + Sync,
        extra_cancel: Option<CancelToken>,
    ) -> Vec<EngineResult<T>> {
        if goals.is_empty() {
            return Vec::new();
        }
        let active = self.workers.min(goals.len());
        let cursor = AtomicUsize::new(0);
        // One shared deadline instant for the whole batch.
        let deadline = self.deadline.map(|d| {
            (
                Instant::now() + d,
                d.as_millis().min(u64::MAX.into()) as u64,
            )
        });
        // One pre-allocated slot per goal: workers write disjoint indices,
        // so the per-slot locks are uncontended; they exist to satisfy the
        // borrow checker, not to serialize anything.
        let slots: Vec<Mutex<Option<EngineResult<T>>>> =
            goals.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for w in 0..active {
                let (cursor, slots, eval, mk_sink, merge, extra_cancel) =
                    (&cursor, &slots, &eval, &mk_sink, &merge, &extra_cancel);
                scope.spawn(move || {
                    // Budgets, solvers, and sinks are built *inside* the
                    // worker: the first two are Rc-based and deliberately
                    // !Send, and the sink follows the same discipline.
                    let mut budget = self.worker_budget(w, active);
                    if let Some((at, ms)) = deadline {
                        budget = budget.with_deadline(at, ms);
                    }
                    if let Some(token) = &self.cancel {
                        budget = budget.with_cancel(token.clone());
                    }
                    if let Some(token) = extra_cancel {
                        budget = budget.with_cancel(token.clone());
                    }
                    let solver = Solver::with_sink(self.kb, budget, mk_sink());
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(goal) = goals.get(i) else { break };
                        let result = catch_unwind(AssertUnwindSafe(|| eval(&solver, goal)))
                            .unwrap_or_else(|payload| {
                                Err(EngineError::GoalPanicked {
                                    message: panic_message(payload.as_ref()),
                                })
                            });
                        *slots[i].lock() = Some(result);
                    }
                    self.stats.lock().absorb(&solver.stats());
                    merge(solver.into_sink());
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("batch scope filled every slot"))
            .collect()
    }
}

/// Render a caught panic payload (the `&str` / `String` cases cover
/// `panic!` with a message; anything else is opaque by design).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EngineError;
    use crate::term::Var;

    fn kb_edges(tabled: bool) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")] {
            kb.assert_fact(Term::pred("e", vec![Term::atom(a), Term::atom(b)]));
        }
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        kb.assert_clause(
            Term::pred("t", vec![x.clone(), y.clone()]),
            Term::or(
                Term::pred("e", vec![x.clone(), y.clone()]),
                Term::and(
                    Term::pred("e", vec![x, z.clone()]),
                    Term::pred("t", vec![z, y]),
                ),
            ),
        );
        if tabled {
            kb.set_tabling(true);
            kb.set_table_all(true);
        }
        kb
    }

    fn reach_goals() -> Vec<Term> {
        ["a", "b", "c", "d"]
            .into_iter()
            .map(|s| Term::pred("t", vec![Term::atom(s), Term::var(0)]))
            .collect()
    }

    fn render(results: &[EngineResult<Vec<Solution>>]) -> Vec<Vec<String>> {
        results
            .iter()
            .map(|r| {
                r.as_ref()
                    .unwrap()
                    .iter()
                    .map(|s| format!("{:?}", s.bindings()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_per_goal_and_order() {
        for tabled in [false, true] {
            let kb = kb_edges(tabled);
            let goals = reach_goals();
            let sequential: Vec<_> = goals
                .iter()
                .map(|g| Solver::new(&kb, Budget::default()).solve_all(g.clone()))
                .collect();
            for workers in [1, 2, 4, 8] {
                let par = ParallelSolver::new(&kb, workers);
                let batch = par.solve_batch(&goals);
                assert_eq!(
                    render(&batch),
                    render(&sequential),
                    "divergence at {workers} workers, tabled={tabled}"
                );
            }
        }
    }

    #[test]
    fn worker_budgets_sum_to_global() {
        let kb = kb_edges(false);
        let par = ParallelSolver::with_budget(&kb, 3, 10, 64);
        assert_eq!(
            (0..3)
                .map(|w| par.worker_budget(w, 3).step_limit())
                .sum::<u64>(),
            10
        );
        // And an exhausted worker reports the limit, not a wrong answer.
        let goals = reach_goals();
        let starved = ParallelSolver::with_budget(&kb, 1, 3, 64);
        let results = starved.solve_batch(&goals);
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(EngineError::StepLimit { .. }))));
    }

    #[test]
    fn merged_stats_cover_all_workers() {
        let kb = kb_edges(true);
        let goals = reach_goals();
        let par = ParallelSolver::new(&kb, 4);
        let batch = par.solve_batch(&goals);
        assert!(batch.iter().all(Result::is_ok));
        let stats = par.stats();
        assert!(stats.steps > 0);
        assert!(stats.resolutions > 0);
        // Every goal either consulted or populated the shared table.
        assert!(stats.table_misses + stats.table_hits >= goals.len() as u64);
        // A second batch over the now-warm shared table replays answers.
        let par2 = ParallelSolver::new(&kb, 4);
        par2.solve_batch(&goals);
        assert!(par2.stats().table_hits > 0);
    }

    #[test]
    fn prove_batch_matches_sequential() {
        let kb = kb_edges(false);
        let goals = vec![
            Term::pred("t", vec![Term::atom("a"), Term::atom("d")]),
            Term::pred("t", vec![Term::atom("d"), Term::atom("a")]),
            Term::not(Term::pred("e", vec![Term::atom("d"), Term::atom("a")])),
        ];
        let par = ParallelSolver::new(&kb, 2);
        let proved: Vec<bool> = par
            .prove_batch(&goals)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(proved, vec![true, false, true]);
    }

    #[test]
    fn profiled_batch_merges_worker_profiles() {
        use crate::kb::PredKey;
        let kb = kb_edges(false);
        let goals = reach_goals();
        let mut par = ParallelSolver::new(&kb, 4);
        par.enable_profile();
        let batch = par.solve_batch(&goals);
        assert!(batch.iter().all(Result::is_ok));
        let prof = par.profile().unwrap();
        // The merged profile accounts for every step every worker took.
        assert_eq!(prof.total_steps(), par.stats().steps);
        assert!(prof.profile_of(PredKey::new("t", 2)).unwrap().calls > 0);
        // Profiling must not perturb the answers.
        let plain = ParallelSolver::new(&kb, 4);
        assert_eq!(render(&plain.solve_batch(&goals)), render(&batch));
    }

    #[test]
    fn worker_panic_is_isolated_to_its_goal() {
        let mut kb = kb_edges(true);
        kb.register_native("boom", 0, |_, _| panic!("native exploded"));
        let mut goals = reach_goals();
        goals.insert(2, Term::pred("boom", vec![]));
        // Sequential expectation for the non-panicking goals.
        let expected: Vec<_> = reach_goals()
            .iter()
            .map(|g| {
                Solver::new(&kb, Budget::default())
                    .solve_all(g.clone())
                    .unwrap()
            })
            .collect();
        crate::chaos::tests_support::with_quiet_panics(|| {
            for workers in [1, 4] {
                let par = ParallelSolver::new(&kb, workers);
                let results = par.solve_batch(&goals);
                assert_eq!(results.len(), 5);
                match &results[2] {
                    Err(EngineError::GoalPanicked { message }) => {
                        assert!(message.contains("native exploded"))
                    }
                    other => panic!("expected GoalPanicked, got {other:?}"),
                }
                for (i, expect) in [(0, 0), (1, 1), (3, 2), (4, 3)] {
                    assert_eq!(
                        results[i].as_ref().unwrap(),
                        &expected[expect],
                        "goal {i} perturbed at {workers} workers"
                    );
                }
                // The shared answer table stayed usable: a fresh batch over
                // the warmed table still answers correctly.
                let again = ParallelSolver::new(&kb, workers);
                let rerun = again.solve_batch(&reach_goals());
                for (r, expect) in rerun.iter().zip(&expected) {
                    assert_eq!(r.as_ref().unwrap(), expect);
                }
            }
        });
    }

    #[test]
    fn cancel_token_stops_the_whole_batch() {
        // A divergent goal: t/2 over a cyclic edge set has no failure
        // frontier under plain SLD, so only the budget can stop it.
        let mut cyclic = KnowledgeBase::new();
        for (a, b) in [("a", "b"), ("b", "a")] {
            cyclic.assert_fact(Term::pred("e", vec![Term::atom(a), Term::atom(b)]));
        }
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        cyclic.assert_clause(
            Term::pred("t", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x, z.clone()]),
                Term::pred("t", vec![z, y]),
            ),
        );
        let mut par = ParallelSolver::with_budget(&cyclic, 2, u64::MAX, 64);
        let token = crate::budget::CancelToken::new();
        par.set_cancel(token.clone());
        let goals = vec![
            Term::pred("t", vec![Term::atom("a"), Term::atom("q")]),
            Term::pred("t", vec![Term::atom("b"), Term::atom("q")]),
        ];
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            token.cancel();
        });
        let results = par.solve_batch(&goals);
        canceller.join().unwrap();
        assert!(results
            .iter()
            .all(|r| matches!(r, Err(EngineError::Cancelled))));
    }

    #[test]
    fn batch_deadline_bounds_divergent_goals() {
        let mut cyclic = KnowledgeBase::new();
        cyclic.assert_fact(Term::pred("e", vec![Term::atom("a"), Term::atom("a")]));
        let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
        cyclic.assert_clause(
            Term::pred("t", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x, z.clone()]),
                Term::pred("t", vec![z, y]),
            ),
        );
        let mut par = ParallelSolver::with_budget(&cyclic, 2, u64::MAX, 64);
        par.set_deadline(Some(std::time::Duration::from_millis(50)));
        let start = std::time::Instant::now();
        let results = par.solve_batch(&[Term::pred("t", vec![Term::atom("a"), Term::atom("q")])]);
        assert!(matches!(
            results[0],
            Err(EngineError::DeadlineExceeded { limit_ms: 50 })
        ));
        assert!(start.elapsed() < std::time::Duration::from_secs(30));
    }

    #[test]
    fn profile_reconciles_when_a_worker_errors_mid_batch() {
        let kb = kb_edges(false);
        let goals = reach_goals();
        // Starve the batch: some goals exhaust their share of the budget.
        let mut par = ParallelSolver::with_budget(&kb, 2, 40, 64);
        par.enable_profile();
        let results = par.solve_batch(&goals);
        assert!(results
            .iter()
            .any(|r| matches!(r, Err(EngineError::StepLimit { .. }))));
        // Every consumed step is still attributed: the merged profile
        // covers the merged stats exactly, errors notwithstanding.
        let prof = par.profile().unwrap();
        assert_eq!(prof.total_steps(), par.stats().steps);
    }

    #[test]
    fn solutions_bind_the_query_variables() {
        let kb = kb_edges(false);
        let goals = vec![Term::pred("e", vec![Term::atom("a"), Term::var(0)])];
        let par = ParallelSolver::new(&kb, 2);
        let results = par.solve_batch(&goals);
        let sols = results[0].as_ref().unwrap();
        assert_eq!(sols.len(), 2);
        assert_eq!(sols[0].get(Var(0)).unwrap(), &Term::atom("b"));
    }
}
