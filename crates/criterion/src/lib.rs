//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the `criterion` 0.5 API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros. It measures wall-clock time and prints one
//! line per benchmark (median, min..max over the collected samples).
//!
//! Sampling is adaptive: the first iteration doubles as calibration and
//! as the first sample, and further samples are taken only while the
//! per-benchmark time budget (default 3 s, `GDP_BENCH_BUDGET_MS` to
//! override) has room. A benchmark whose single iteration exceeds the
//! budget therefore costs exactly one iteration — essential here because
//! the untabled baselines are intentionally slow.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

fn time_budget() -> Duration {
    let ms = std::env::var("GDP_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(3_000);
    Duration::from_millis(ms)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter (the group name provides
    /// the function part).
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    max_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, collecting wall-clock samples until the
    /// sample target or the time budget is reached (whichever first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.max_samples || Instant::now() >= self.deadline {
                return;
            }
        }
    }
}

/// A named set of related benchmarks, printed under a common prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the target number of samples per benchmark (the time budget
    /// may cut collection short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark `routine`, passing it the bencher and `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        self.run(&label, |b| routine(b, input));
        self
    }

    /// Benchmark `routine` under the given name.
    pub fn bench_function<N: IntoBenchmarkId, F>(&mut self, id: N, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(&label, |b| routine(b));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, label: &str, routine: F) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            deadline: Instant::now() + time_budget(),
            max_samples: self.sample_size,
        };
        routine(&mut bencher);
        report(label, &mut bencher.samples);
    }

    /// End the group (printing happens per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<44} (no samples: bencher.iter was not called)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<44} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accept and ignore CLI configuration (API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named [`BenchmarkGroup`].
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Print the trailing summary (a no-op; results print as they run).
    pub fn final_summary(&mut self) {}
}

/// Bundle benchmark functions into a callable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter(|| runs += 1)
        });
        group.finish();
        assert!((1..=5).contains(&runs));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.000 s");
    }
}
