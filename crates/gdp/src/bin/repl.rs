//! gdp-repl — an interactive requirements-specification shell.
//!
//! The paper frames specification as an interactive validation activity;
//! this shell is the workbench: type statements in the specification
//! language (terminated by `.`), query with `?- … .`, and use `:`-commands
//! for session control.
//!
//! ```text
//! $ cargo run -p gdp --bin gdp-repl
//! gdp> bridge(b1). bridge(b2). open(b1).
//! gdp> closed(X) :- bridge(X), not(open(X)).
//! gdp> ?- closed(X).
//! X = b2
//! gdp> :why closed(b2)
//! closed(b2)   [rule in rules] …
//! ```

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Duration;

use gdp::lang::{parse_formula, LangError, Loader};
use gdp::prelude::*;

/// The session's cancellation token, reachable from the SIGINT handler.
static INTERRUPT: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_sig: i32) {
    // An atomic store: async-signal-safe. The in-flight query observes
    // the tripped token at its next budget checkpoint.
    if let Some(token) = INTERRUPT.get() {
        token.cancel();
    }
}

/// Route Ctrl-C to the cancellation token instead of killing the shell.
/// Raw `signal(2)` keeps this dependency-free; glibc's `signal` installs
/// BSD (SA_RESTART) semantics, so the blocking prompt read survives the
/// interrupt and only the solver notices.
#[cfg(unix)]
fn install_sigint(token: CancelToken) {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    if INTERRUPT.set(token).is_ok() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
}

#[cfg(not(unix))]
fn install_sigint(_token: CancelToken) {
    // No signal plumbing off unix; Ctrl-C keeps its default behavior.
    let _ = &INTERRUPT;
    let _ = on_sigint as extern "C" fn(i32);
}

const HELP: &str = "\
statements  any specification-language statement ending in `.`
            (facts, rules, constraints, #directives, `?- query.`)
:load FILE  load a specification file
:why GOAL   explain why a fact is provable (proof tree)
:check      run consistency checking against the active world view
:audit [-j N] [-i]  parallel world-view audit (N workers; default: all
            cores). `-i`: incremental — re-solve only the members whose
            goals depend on predicates dirtied since the last audit
            (committed transactions accumulate the pending delta)
:begin      open a transaction (assertions/retractions become revertible)
:commit     commit the transaction; its delta feeds the next `:audit -i`
:rollback   abort the transaction, restoring the pre-:begin state
:views      show the active world view and meta-view
:stats      knowledge-base, solver, and answer-table statistics
            (after :audit these are the merged per-worker counters)
:index [MODE]  clause indexing: no argument prints the per-predicate
            index report (hash/range configuration, hit and prune
            counters); on | off | status toggle candidate selection
            (`GDP_INDEX=off` in the environment starts with it off)
:table MODE answer tabling: on | off | all | status, plus the
            recursive-cycle policy: inductive | coinductive
:trace MODE port-event tracing: on | off | show | status
            (`show` prints the last traced query's final events)
:profile [MODE]  per-predicate profiler: no argument prints the
            hot-predicate table; on | off | reset manage it
:budget S D set the per-query step and depth budget
:deadline MS|off  wall-clock limit per query (Ctrl-C cancels any time)
:retry [N]  audit retry attempts for budget-limited goals (escalating
            step limits); no argument prints the current policy
:help       this text
:quit       exit";

fn main() {
    let mut spec = match gdp::standard_spec() {
        Ok((spec, reg)) => Session {
            spec,
            reg,
            pending: gdp::engine::Delta::new(),
        },
        Err(e) => {
            eprintln!("failed to initialize: {e}");
            std::process::exit(1);
        }
    };
    // Make the fuzzy rule packs available out of the box.
    spec.spec
        .register_meta_model(gdp::fuzzy::unified_fuzzy(gdp::fuzzy::UnifyPolicy::Max));
    install_sigint(spec.spec.cancel_token());

    println!("gdp-repl — formal GDP requirements shell (:help for help, Ctrl-C cancels a query)");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("gdp> ");
        } else {
            print!("...> ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                // Ctrl-C at the prompt (non-restarting platforms): just
                // re-prompt.
                println!();
                continue;
            }
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') {
            if !spec.guarded(|s| s.command(trimmed)) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // A statement ends with `.` at end of line (ignoring whitespace).
        if trimmed.ends_with('.') {
            let source = std::mem::take(&mut buffer);
            spec.guarded(|s| {
                s.run_source(&source);
                true
            });
        }
    }
}

struct Session {
    spec: Specification,
    reg: SpatialRegistry,
    /// Deltas of committed-but-not-yet-audited transactions, merged in
    /// commit order; `:audit -i` consumes them.
    pending: gdp::engine::Delta,
}

/// Parse the `:audit` argument list: any order of `-j N` and `-i`.
/// Returns `(workers, incremental)`.
fn parse_audit_workers(rest: &str) -> Result<(usize, bool), String> {
    let usage = || "usage: :audit [-j N] [-i]".to_string();
    let mut workers = None;
    let mut incremental = false;
    let mut parts = rest.split_whitespace();
    while let Some(part) = parts.next() {
        match part {
            "-i" => incremental = true,
            "-j" => {
                let n = parts.next().ok_or_else(usage)?;
                workers = Some(n.parse::<usize>().ok().filter(|w| *w >= 1).ok_or_else(|| {
                    format!("usage: :audit [-j N] [-i] (N must be a positive integer, got {n})")
                })?);
            }
            _ => return Err(usage()),
        }
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    Ok((workers, incremental))
}

impl Session {
    /// Run one interaction with the session kept alive across faults: the
    /// cancellation token is rearmed first (a Ctrl-C that landed after the
    /// previous query finished must not poison this one), and a panic
    /// escaping the interaction — a buggy native, an injected fault — is
    /// contained and reported instead of tearing the shell down.
    fn guarded(&mut self, f: impl FnOnce(&mut Session) -> bool) -> bool {
        self.spec.cancel_token().reset();
        match catch_unwind(AssertUnwindSafe(|| f(self))) {
            Ok(keep_going) => keep_going,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                println!("internal panic (session kept): {message}");
                true
            }
        }
    }

    /// Print one specification-layer failure, reporting interrupts and
    /// deadlines as first-class outcomes with the steps they consumed.
    fn report_spec_error(&self, e: &SpecError) {
        match e {
            SpecError::Engine(EngineError::Cancelled) => {
                println!("cancelled. ({} steps used)", self.spec.solver_stats().steps);
            }
            SpecError::Engine(EngineError::DeadlineExceeded { .. }) => {
                println!(
                    "deadline exceeded. ({} steps used)",
                    self.spec.solver_stats().steps
                );
            }
            other => println!("error: {other}"),
        }
    }

    fn run_source(&mut self, source: &str) {
        // Rearm the cancellation token before every statement, not just
        // once per interaction: a Ctrl-C that lands during one statement
        // of a multi-statement source (or a `:load`ed file) must kill
        // only that query — without this, the tripped token makes every
        // later statement in the same source die instantly with a stale
        // `Cancelled`.
        let token = self.spec.cancel_token();
        match Loader::with_spatial(&mut self.spec, &self.reg)
            .load_str_guarded(source, || token.reset())
        {
            Ok(summary) => {
                for answers in &summary.query_results {
                    if answers.is_empty() {
                        println!("no.");
                        continue;
                    }
                    // Deduplicate repeated derivations for display.
                    let mut seen = Vec::new();
                    for answer in answers {
                        let line = if answer.bindings().is_empty() {
                            "yes.".to_string()
                        } else {
                            answer
                                .bindings()
                                .iter()
                                .map(|(name, value)| format!("{name} = {value}"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        };
                        if !seen.contains(&line) {
                            println!("{line}");
                            seen.push(line);
                        }
                    }
                }
                let loaded = summary.facts + summary.rules + summary.constraints;
                if loaded > 0 {
                    println!(
                        "ok ({} facts, {} rules, {} constraints)",
                        summary.facts, summary.rules, summary.constraints
                    );
                }
            }
            Err(e) => {
                // One line per diagnostic: the loader recovers at clause
                // boundaries, so a multi-defect source reports everything.
                for d in e.diagnostics() {
                    match d {
                        LangError::Load {
                            error:
                                error @ SpecError::Engine(
                                    EngineError::Cancelled | EngineError::DeadlineExceeded { .. },
                                ),
                            ..
                        } => self.report_spec_error(error),
                        other => println!("error: {other}"),
                    }
                }
            }
        }
    }

    /// Returns false to quit.
    fn command(&mut self, input: &str) -> bool {
        let (cmd, rest) = match input.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (input, ""),
        };
        match cmd {
            ":quit" | ":q" | ":exit" => return false,
            ":help" | ":h" => println!("{HELP}"),
            ":load" => match std::fs::read_to_string(rest) {
                Ok(source) => self.run_source(&source),
                Err(e) => println!("error: cannot read {rest}: {e}"),
            },
            ":why" => match parse_formula(rest) {
                Ok(gdp::core::Formula::Fact(pat)) => match self.spec.explain_fact(pat) {
                    Ok(Some(proof)) => print!("{}", proof.render()),
                    Ok(None) => println!("not provable."),
                    Err(e) => println!("error: {e}"),
                },
                Ok(_) => println!("error: :why takes a single fact goal"),
                Err(e) => println!("error: {e}"),
            },
            ":check" => match self.spec.check_consistency() {
                Ok(violations) if violations.is_empty() => {
                    println!("consistent (no constraint violations).")
                }
                Ok(violations) => {
                    for v in violations {
                        println!("{v}");
                    }
                }
                Err(e) => self.report_spec_error(&e),
            },
            ":begin" => match self.spec.begin_txn() {
                Ok(()) => println!("transaction open (:commit or :rollback)."),
                Err(e) => println!("error: {e}"),
            },
            ":commit" => match self.spec.commit_txn() {
                Ok(delta) => {
                    let mut dirty: Vec<String> = delta
                        .dirty_preds()
                        .into_iter()
                        .map(|k| format!("{}/{}", k.name.as_str(), k.arity))
                        .collect();
                    dirty.sort();
                    println!(
                        "committed {} operation(s); dirtied: {}",
                        delta.len(),
                        if dirty.is_empty() {
                            "nothing".to_string()
                        } else {
                            dirty.join(", ")
                        }
                    );
                    self.pending.merge(delta);
                }
                Err(e) => println!("error: {e}"),
            },
            ":rollback" => match self.spec.rollback_txn() {
                Ok(undone) => println!("rolled back {undone} operation(s)."),
                Err(e) => println!("error: {e}"),
            },
            ":audit" => {
                let (workers, incremental) = match parse_audit_workers(rest) {
                    Ok(parsed) => parsed,
                    Err(msg) => {
                        println!("{msg}");
                        return true;
                    }
                };
                let result = if incremental {
                    // First use arms per-member caching; this (full) audit
                    // seeds the cache for the next delta-driven one.
                    if !self.spec.incremental_enabled() {
                        self.spec.set_incremental(true);
                    }
                    self.spec.audit_incremental(&self.pending, workers)
                } else {
                    self.spec.audit_world_views(workers)
                };
                if incremental && result.is_ok() {
                    self.pending = gdp::engine::Delta::new();
                }
                match result {
                    Ok(report) => {
                        if report.violations.is_empty() && report.is_complete() {
                            println!(
                                "consistent across {} world-view member(s) ({} workers).",
                                report.per_model.len(),
                                report.workers
                            );
                        } else {
                            for v in &report.violations {
                                println!("{v}");
                            }
                            let breakdown = report
                                .per_model
                                .iter()
                                .map(|(m, n)| format!("{m}: {n}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            println!(
                                "{} violation(s) ({}); {} workers",
                                report.violations.len(),
                                breakdown,
                                report.workers
                            );
                        }
                        for f in &report.incomplete {
                            println!(
                                "incomplete: {} — {} (after {} retr{})",
                                f.model,
                                f.error,
                                f.attempts,
                                if f.attempts == 1 { "y" } else { "ies" }
                            );
                        }
                        if !report.is_complete() {
                            println!(
                                "degraded audit: {}/{} member(s) reported.",
                                report.per_model.len() - report.incomplete.len(),
                                report.per_model.len()
                            );
                        }
                        let s = report.stats;
                        println!(
                            "merged: {} steps, {} clause resolutions, table {} hit / {} miss / {} fallback",
                            s.steps, s.resolutions, s.table_hits, s.table_misses, s.table_fallbacks
                        );
                    }
                    Err(e) => self.report_spec_error(&e),
                }
            }
            ":views" => {
                println!("world view: {}", self.spec.world_view().join(", "));
                println!("meta view:  {}", self.spec.meta_view().join(", "));
            }
            ":stats" => {
                println!(
                    "{} clauses across {} predicates; grids: {}",
                    self.spec.kb().clause_count(),
                    self.spec.kb().predicate_count(),
                    self.reg.grid_names().join(", ")
                );
                let s = self.spec.solver_stats();
                println!(
                    "last query: {} steps, {} clause resolutions, table {} hit / {} miss / {} fallback",
                    s.steps, s.resolutions, s.table_hits, s.table_misses, s.table_fallbacks
                );
                let t = self.spec.table_stats();
                println!(
                    "answer table ({}, {} cycles): {} entries; lifetime {} hits, {} misses, {} inserts, {} invalidations, {} fallbacks",
                    if self.spec.tabling_enabled() { "on" } else { "off" },
                    self.spec.cycle_policy(),
                    self.spec.kb().table().len(),
                    t.hits, t.misses, t.inserts, t.invalidations, t.fallbacks
                );
            }
            ":index" => match rest {
                "on" => {
                    self.spec.kb_mut().set_indexing(true);
                    println!("indexing on (hash + range candidate selection).");
                }
                "off" => {
                    self.spec.kb_mut().set_indexing(false);
                    println!("indexing off: every call scans all clauses.");
                }
                "status" => println!(
                    "indexing is {}.",
                    if self.spec.kb().indexing() {
                        "on"
                    } else {
                        "off"
                    }
                ),
                "" => {
                    println!(
                        "indexing is {}.",
                        if self.spec.kb().indexing() {
                            "on"
                        } else {
                            "off"
                        }
                    );
                    let reports: Vec<_> = self
                        .spec
                        .kb()
                        .index_stats()
                        .into_iter()
                        .filter(|r| {
                            !r.hash_positions.is_empty()
                                || !r.range_specs.is_empty()
                                || r.consults > 0
                        })
                        .collect();
                    if reports.is_empty() {
                        println!("no indexed predicates consulted yet.");
                    } else {
                        println!(
                            "{:<14} {:>7}  {:<9} {:<11} {:>8} {:>8} {:>8} {:>9} {:>6}",
                            "predicate",
                            "clauses",
                            "hash",
                            "range",
                            "consults",
                            "hashhit",
                            "rangehit",
                            "pruned",
                            "scans"
                        );
                        for r in reports {
                            let hash = if r.hash_positions.is_empty() {
                                "-".to_string()
                            } else {
                                r.hash_positions
                                    .iter()
                                    .map(|p| p.to_string())
                                    .collect::<Vec<_>>()
                                    .join(",")
                            };
                            let (ivs, grids) =
                                r.range_specs.iter().fold((0, 0), |(i, g), s| match s {
                                    gdp::engine::RangeSpec::Interval(_) => (i + 1, g),
                                    gdp::engine::RangeSpec::Grid { .. } => (i, g + 1),
                                });
                            let range = match (ivs, grids) {
                                (0, 0) => "-".to_string(),
                                (i, 0) => format!("{i} iv"),
                                (0, g) => format!("{g} grid"),
                                (i, g) => format!("{i} iv,{g} grid"),
                            };
                            println!(
                                "{:<14} {:>7}  {:<9} {:<11} {:>8} {:>8} {:>8} {:>9} {:>6}",
                                r.pred.to_string(),
                                r.clauses,
                                hash,
                                range,
                                r.consults,
                                r.hash_hits,
                                r.range_hits,
                                r.pruned,
                                r.scans
                            );
                        }
                    }
                }
                other => println!("usage: :index [on|off|status] (got {other})"),
            },
            ":table" => match rest {
                "on" => {
                    self.spec.enable_tabling(true);
                    println!("answer tabling on (nominated predicates).");
                }
                "off" => {
                    self.spec.enable_tabling(false);
                    println!("answer tabling off.");
                }
                "all" => {
                    self.spec.enable_tabling(true);
                    self.spec.set_table_all(true);
                    println!("answer tabling on for every user predicate.");
                }
                "inductive" => {
                    self.spec.set_cycle_policy(CyclePolicy::Inductive);
                    println!("cycle policy inductive (recursive re-entry fails; least fixpoint).");
                }
                "coinductive" => {
                    self.spec.set_cycle_policy(CyclePolicy::Coinductive);
                    println!("cycle policy coinductive (recursive re-entry succeeds).");
                }
                "status" | "" => {
                    let t = self.spec.table_stats();
                    println!(
                        "answer tabling is {} ({} cached call patterns, {} cycle policy, {} SLD fallback(s) in non-tablable contexts).",
                        if self.spec.tabling_enabled() {
                            "on"
                        } else {
                            "off"
                        },
                        self.spec.kb().table().len(),
                        self.spec.cycle_policy(),
                        t.fallbacks,
                    );
                }
                other => {
                    println!("usage: :table on|off|all|status|inductive|coinductive (got {other})")
                }
            },
            ":trace" => match rest {
                "on" => {
                    self.spec.set_trace(true);
                    println!("port-event tracing on (:trace show after a query).");
                }
                "off" => {
                    self.spec.set_trace(false);
                    println!("port-event tracing off.");
                }
                "show" | "" => match self.spec.last_trace() {
                    Some(trace) => print!("{}", trace.render()),
                    None => println!("no traced query yet (:trace on, then run one)."),
                },
                "status" => println!(
                    "port-event tracing is {}.",
                    if self.spec.trace_enabled() {
                        "on"
                    } else {
                        "off"
                    }
                ),
                other => println!("usage: :trace on|off|show|status (got {other})"),
            },
            ":profile" => match rest {
                "on" => {
                    self.spec.set_profile(true);
                    println!("per-predicate profiling on.");
                }
                "off" => {
                    self.spec.set_profile(false);
                    println!("per-predicate profiling off.");
                }
                "reset" => {
                    self.spec.reset_profile();
                    println!("profile cleared.");
                }
                "" => {
                    let prof = self.spec.profile();
                    if prof.is_empty() {
                        println!(
                            "no profile data ({}).",
                            if self.spec.profile_enabled() {
                                "run a query first"
                            } else {
                                ":profile on, then run a query"
                            }
                        );
                    } else {
                        print!("{}", prof.render());
                    }
                }
                other => println!("usage: :profile [on|off|reset] (got {other})"),
            },
            ":budget" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                match (
                    parts.first().and_then(|s| s.parse::<u64>().ok()),
                    parts.get(1).and_then(|s| s.parse::<u32>().ok()),
                ) {
                    (Some(steps), Some(depth)) => {
                        self.spec.set_budget(steps, depth);
                        println!("budget: {steps} steps, depth {depth}");
                    }
                    _ => println!("usage: :budget <steps> <depth>"),
                }
            }
            ":deadline" => match rest {
                "off" => {
                    self.spec.set_deadline(None);
                    println!("deadline off.");
                }
                ms => match ms.parse::<u64>() {
                    Ok(ms) if ms >= 1 => {
                        self.spec.set_deadline(Some(Duration::from_millis(ms)));
                        println!("deadline: {ms} ms per query.");
                    }
                    _ => println!("usage: :deadline <ms>|off"),
                },
            },
            ":retry" => match rest {
                "" => {
                    let policy = self.spec.retry();
                    println!(
                        "retry policy: {} attempt(s), x{} step escalation per attempt.",
                        policy.attempts, policy.escalation
                    );
                }
                n => match n.parse::<u32>() {
                    Ok(attempts) => {
                        self.spec.set_retry(RetryPolicy::retries(attempts));
                        println!(
                            "audit retries: {attempts} attempt(s) with escalating step limits."
                        );
                    }
                    Err(_) => println!("usage: :retry [<attempts>]"),
                },
            },
            other => println!("unknown command {other} (:help for help)"),
        }
        true
    }
}
