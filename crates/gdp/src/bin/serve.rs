//! gdp-serve — the specification store as a network service.
//!
//! Speaks the `gdp-repl` protocol over a TCP or Unix socket, one session
//! per connection. Every session reads against an MVCC snapshot pinned at
//! connect time (re-pin with `:snapshot`); writers commit atomically
//! through the shared store. With `--wal`, every commit is appended to a
//! durable write-ahead log and replayed on restart.
//!
//! ```text
//! $ gdp-serve --tcp 127.0.0.1:7411 --wal /var/lib/gdp/spec.wal
//! $ gdp-serve --unix /tmp/gdp.sock
//! # then from N terminals:
//! $ nc 127.0.0.1 7411
//! gdp> bridge(b1). open(b1).
//! ok (2 facts, 0 rules, 0 constraints) committed as seq 1
//! gdp> ?- bridge(X).
//! X = b1
//! ```

use std::net::TcpListener;
use std::path::PathBuf;

#[cfg(unix)]
use gdp::server::serve_unix;
use gdp::server::{serve_tcp, ServerState};

const USAGE: &str = "\
usage: gdp-serve (--tcp ADDR | --unix PATH) [--wal FILE] [--load FILE]
  --tcp ADDR   listen on a TCP address, e.g. 127.0.0.1:7411
  --unix PATH  listen on a Unix-domain socket at PATH (removed first)
  --wal FILE   durable mode: append commits to FILE, replay it on start
  --load FILE  commit a specification file into the store before serving";

enum Listen {
    Tcp(String),
    #[cfg_attr(not(unix), allow(dead_code))]
    Unix(PathBuf),
}

fn main() {
    let mut listen = None;
    let mut wal: Option<PathBuf> = None;
    let mut load: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => listen = args.next().map(Listen::Tcp),
            "--unix" => listen = args.next().map(|p| Listen::Unix(PathBuf::from(p))),
            "--wal" => wal = args.next().map(PathBuf::from),
            "--load" => load = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let Some(listen) = listen else {
        die(USAGE);
    };

    let state = match &wal {
        Some(path) => match ServerState::durable(path) {
            Ok((state, replayed)) => {
                eprintln!(
                    "gdp-serve: replayed {replayed} commit(s) from {} (head seq {})",
                    path.display(),
                    state.store().head_seq()
                );
                state
            }
            Err(e) => die(&format!("cannot open WAL {}: {e}", path.display())),
        },
        None => match ServerState::new() {
            Ok(state) => state,
            Err(e) => die(&format!("failed to initialize: {e}")),
        },
    };

    if let Some(path) = load {
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => die(&format!("cannot read {}: {e}", path.display())),
        };
        let registry = state.registry().clone();
        let result = state.store().commit(|spec| {
            gdp::lang::Loader::with_spatial(spec, &registry)
                .load_str(&source)
                .map_err(|e| gdp::core::SpecError::Transaction(e.to_string()))
        });
        match result {
            Ok((committed, summary)) => eprintln!(
                "gdp-serve: loaded {} ({} facts, {} rules, {} constraints) as seq {}",
                path.display(),
                summary.facts,
                summary.rules,
                summary.constraints,
                committed.seq
            ),
            Err(e) => die(&format!("cannot load {}: {e}", path.display())),
        }
    }

    let outcome = match listen {
        Listen::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!("gdp-serve: listening on tcp://{addr}");
                serve_tcp(state, listener)
            }
            Err(e) => die(&format!("cannot bind {addr}: {e}")),
        },
        #[cfg(unix)]
        Listen::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            match std::os::unix::net::UnixListener::bind(&path) {
                Ok(listener) => {
                    eprintln!("gdp-serve: listening on unix://{}", path.display());
                    serve_unix(state, listener)
                }
                Err(e) => die(&format!("cannot bind {}: {e}", path.display())),
            }
        }
        #[cfg(not(unix))]
        Listen::Unix(_) => die("--unix requires a unix platform; use --tcp"),
    };
    if let Err(e) = outcome {
        die(&format!("accept loop failed: {e}"));
    }
}

fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(1);
}
