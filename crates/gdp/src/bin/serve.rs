//! gdp-serve — the specification store as a network service.
//!
//! Speaks the `gdp-repl` protocol over a TCP or Unix socket, one session
//! per connection. Every session reads against an MVCC snapshot pinned at
//! connect time (re-pin with `:snapshot`); writers commit atomically
//! through the shared store. With `--wal`, every commit is appended to a
//! durable write-ahead log, folded into periodic checkpoints, and
//! recovered on restart (newest valid checkpoint + log suffix).
//!
//! `--load` files are part of the *base image*: they are applied before
//! the store opens and fingerprinted into the WAL/checkpoint family, so
//! editing one between runs of a durable server is a refused recovery,
//! not silent divergence.
//!
//! The server drains gracefully on SIGTERM or `:shutdown`: it stops
//! accepting, finishes (or cancels, after a grace period) in-flight
//! statements, writes a final checkpoint, and exits 0.
//!
//! ```text
//! $ gdp-serve --tcp 127.0.0.1:7411 --wal /var/lib/gdp/spec.wal
//! $ gdp-serve --unix /tmp/gdp.sock --max-sessions 16 --deadline 2000
//! # then from N terminals:
//! $ nc 127.0.0.1 7411
//! gdp> bridge(b1). open(b1).
//! ok (2 facts, 0 rules, 0 constraints) committed as seq 1
//! gdp> ?- bridge(X).
//! X = b1
//! ```

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use gdp::core::DurabilityOptions;
#[cfg(unix)]
use gdp::server::serve_unix_opts;
use gdp::server::{serve_tcp_opts, ServeOptions, ServerState};

const USAGE: &str = "\
usage: gdp-serve (--tcp ADDR | --unix PATH) [options]
  --tcp ADDR         listen on a TCP address, e.g. 127.0.0.1:7411
  --unix PATH        listen on a Unix-domain socket at PATH (removed first)
  --wal FILE         durable mode: WAL + checkpoints rooted at FILE,
                     recovered on start (FILE, FILE.prev, FILE.ckpt, …)
  --load FILE        apply a specification file to the base image before
                     serving (repeatable; fingerprinted under --wal)
  --checkpoint N     fold the KB into a checkpoint every N commits
                     (default 32; 0 = only the final drain checkpoint)
  --max-sessions N   admission limit; extra connections get `server busy`
                     (default 64)
  --idle-timeout S   close sessions idle for S seconds (default: never)
  --deadline MS      per-statement wall-clock limit in milliseconds
                     (default: none)";

/// The server state, reachable from the SIGTERM handler.
static DRAIN: OnceLock<std::sync::Arc<ServerState>> = OnceLock::new();

extern "C" fn on_sigterm(_sig: i32) {
    // A single atomic store: async-signal-safe. The accept loop and the
    // session ticks notice the flag and drain.
    if let Some(state) = DRAIN.get() {
        state.request_shutdown();
    }
}

/// Route SIGTERM to a graceful drain. Raw `signal(2)` keeps this
/// dependency-free (same pattern as gdp-repl's SIGINT handling);
/// SA_RESTART semantics are irrelevant here because every blocking read
/// already ticks on a timeout.
#[cfg(unix)]
fn install_sigterm(state: std::sync::Arc<ServerState>) {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGTERM: i32 = 15;
    if DRAIN.set(state).is_ok() {
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

#[cfg(not(unix))]
fn install_sigterm(_state: std::sync::Arc<ServerState>) {
    // No signal plumbing off unix; `:shutdown` still drains.
    let _ = &DRAIN;
    let _ = on_sigterm as extern "C" fn(i32);
}

enum Listen {
    Tcp(String),
    #[cfg_attr(not(unix), allow(dead_code))]
    Unix(PathBuf),
}

fn parsed<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.as_deref().map(T::from_str) {
        Some(Ok(v)) => v,
        _ => die(&format!("{flag} needs a numeric argument\n{USAGE}")),
    }
}

fn main() {
    let mut listen = None;
    let mut wal: Option<PathBuf> = None;
    let mut load: Vec<PathBuf> = Vec::new();
    let mut opts = ServeOptions::default();
    let mut durability = DurabilityOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => listen = args.next().map(Listen::Tcp),
            "--unix" => listen = args.next().map(|p| Listen::Unix(PathBuf::from(p))),
            "--wal" => wal = args.next().map(PathBuf::from),
            "--load" => match args.next() {
                Some(p) => load.push(PathBuf::from(p)),
                None => die(&format!("--load needs a file argument\n{USAGE}")),
            },
            "--checkpoint" => {
                let n: u64 = parsed("--checkpoint", args.next());
                durability.checkpoint_interval = (n > 0).then_some(n);
            }
            "--max-sessions" => opts.max_sessions = parsed("--max-sessions", args.next()),
            "--idle-timeout" => {
                opts.idle_timeout =
                    Some(Duration::from_secs(parsed("--idle-timeout", args.next())));
            }
            "--deadline" => {
                opts.statement_deadline =
                    Some(Duration::from_millis(parsed("--deadline", args.next())));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument {other}\n{USAGE}")),
        }
    }
    let Some(listen) = listen else {
        die(USAGE);
    };
    if opts.max_sessions == 0 {
        die("--max-sessions must be at least 1");
    }

    let state = match &wal {
        Some(path) => match ServerState::durable_opts(path, durability, &load) {
            Ok((state, head)) => {
                eprintln!(
                    "gdp-serve: recovered head seq {head} from {} (fingerprint {:016x})",
                    path.display(),
                    state.store().base_fingerprint().unwrap_or(0)
                );
                state
            }
            Err(e) => die(&format!("cannot open WAL {}: {e}", path.display())),
        },
        None => match ServerState::with_load(&load) {
            Ok(state) => state,
            Err(e) => die(&format!("failed to initialize: {e}")),
        },
    };
    for path in &load {
        eprintln!("gdp-serve: base image includes {}", path.display());
    }
    install_sigterm(std::sync::Arc::clone(&state));

    let outcome = match listen {
        Listen::Tcp(addr) => match TcpListener::bind(&addr) {
            Ok(listener) => {
                eprintln!("gdp-serve: listening on tcp://{addr}");
                serve_tcp_opts(state, listener, opts)
            }
            Err(e) => die(&format!("cannot bind {addr}: {e}")),
        },
        #[cfg(unix)]
        Listen::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            match std::os::unix::net::UnixListener::bind(&path) {
                Ok(listener) => {
                    eprintln!("gdp-serve: listening on unix://{}", path.display());
                    serve_unix_opts(state, listener, opts)
                }
                Err(e) => die(&format!("cannot bind {}: {e}", path.display())),
            }
        }
        #[cfg(not(unix))]
        Listen::Unix(_) => die("--unix requires a unix platform; use --tcp"),
    };
    if let Err(e) = outcome {
        die(&format!("accept loop failed: {e}"));
    }
}

fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(1);
}
