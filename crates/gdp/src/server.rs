//! The serving layer behind `gdp-serve`: REPL-protocol sessions over any
//! byte stream, with MVCC snapshot isolation per session.
//!
//! One process hosts one [`ServerState`] — a [`SpecStore`] plus the shared
//! spatial registry — and any number of concurrent sessions. Each session
//! pins a *snapshot* of the specification (a generation-tagged, copy-on-
//! write view; see [`SpecStore::snapshot`]) and runs every query, `:check`
//! and `:audit` against it: a writer committing on another connection
//! never changes what an open session observes until it re-pins.
//!
//! The wire protocol is the `gdp-repl` protocol verbatim — statements
//! terminated by `.`, `:`-commands for session control, one `gdp> `
//! prompt after each response — so the shell and the server speak the
//! same language, and anything scriptable against one drives the other.
//! Session-level additions:
//!
//! * statement blocks outside a transaction commit **atomically**: any
//!   diagnostic rolls the whole block back (the shell instead applies
//!   the statements that parsed);
//! * `:begin` buffers statement blocks client-side of the store and
//!   `:commit` applies them as one commit; `:rollback` discards them;
//! * `:snapshot [SEQ]` re-pins the session (head, or a retained earlier
//!   commit); `:seq` shows the pinned and head sequence numbers.
//!
//! The socket layer is hardened for unattended operation
//! ([`ServeOptions`]): admission control turns away connections past
//! `max_sessions` with a clean `server busy` line; per-session idle and
//! per-statement wall-clock deadlines ride the engine's
//! [`CancelToken`]/deadline machinery; and a drain request (SIGTERM in
//! `gdp-serve`, or `:shutdown` from any session) stops the accept loop,
//! lets in-flight statements finish within a grace period, cancels the
//! stragglers, joins every session thread, and writes a final
//! checkpoint before returning.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gdp_core::{DurabilityOptions, SpecError, SpecResult, SpecStore, Specification};
use gdp_engine::{CancelToken, Delta, EngineError};
use gdp_lang::Loader;
use gdp_spatial::SpatialRegistry;

const PROMPT: &str = "gdp> ";
const CONT_PROMPT: &str = "...> ";

/// How often blocked socket reads wake up to notice drain/idle state,
/// and how often the accept loop polls its non-blocking listener.
const TICK: Duration = Duration::from_millis(50);

const HELP: &str = "\
statements  any specification-language statement ending in `.`
            (facts, rules, constraints, #directives, `?- query.`)
            queries run against this session's pinned snapshot;
            other statements commit atomically to the live store
:begin      buffer statement blocks; :commit applies them as ONE commit
:commit     commit the buffered blocks (all-or-nothing)
:rollback   discard the buffered blocks
:snapshot [SEQ]  re-pin this session: at head, or at a retained commit
:seq        this session's pinned sequence and the store's head
:check      consistency check against the pinned snapshot
:audit [-j N] [-i]  parallel world-view audit of the pinned snapshot
:views      the active world view and meta-view
:stats      knowledge-base and solver statistics (pinned snapshot)
:shutdown   drain the whole server: stop accepting, finish sessions,
            write a final checkpoint, exit
:help       this text
:quit       close this session";

/// Serving knobs: admission control, timeouts, drain behavior. Every
/// field has a production-sane default; `gdp-serve` exposes them as
/// flags.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Maximum concurrent sessions; further connections are turned away
    /// with a clean `server busy` line instead of queueing unboundedly.
    pub max_sessions: usize,
    /// Close a session after this long without a complete line from the
    /// client. `None` = sessions may idle forever.
    pub idle_timeout: Option<Duration>,
    /// Wall-clock deadline applied to each statement (queries, `:check`,
    /// `:audit`, commit blocks). `None` = no per-statement limit.
    pub statement_deadline: Option<Duration>,
    /// On drain, how long in-flight statements get to finish naturally
    /// before their cancel tokens are tripped.
    pub drain_grace: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_sessions: 64,
            idle_timeout: None,
            statement_deadline: None,
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Shared server state: the MVCC store, the spatial registry every
/// session's loader consults, and the drain/admission bookkeeping.
/// Sessions hold it behind an [`Arc`].
pub struct ServerState {
    store: SpecStore,
    registry: SpatialRegistry,
    /// Tripped by SIGTERM or `:shutdown`; the accept loop and every
    /// session tick notice it and wind down.
    shutdown: AtomicBool,
    /// Active sessions' cancel tokens, keyed by session id — the drain
    /// path trips them all after the grace period.
    sessions: Mutex<HashMap<u64, CancelToken>>,
    next_session: AtomicU64,
}

/// The base image every `gdp-serve` process starts from: the standard
/// spatial + temporal specification with the fuzzy rule packs registered
/// (exactly what `gdp-repl` builds). Durable stores replay their WAL over
/// this base, so it must stay deterministic.
fn base_spec() -> SpecResult<(Specification, SpatialRegistry)> {
    let (mut spec, registry) = crate::standard_spec()?;
    spec.register_meta_model(gdp_fuzzy::unified_fuzzy(gdp_fuzzy::UnifyPolicy::Max));
    Ok((spec, registry))
}

impl ServerState {
    /// Build the base image: the standard spec plus every `--load` file,
    /// applied *before* the store exists. Load files are part of the
    /// base, not commits — durable stores fingerprint the result, so a
    /// load file that changes between runs is caught at recovery instead
    /// of silently diverging the replay.
    fn build_base(load: &[PathBuf]) -> SpecResult<(Specification, SpatialRegistry)> {
        let (mut spec, registry) = base_spec()?;
        for path in load {
            let source = std::fs::read_to_string(path).map_err(|e| {
                SpecError::Transaction(format!("cannot read {}: {e}", path.display()))
            })?;
            Loader::with_spatial(&mut spec, &registry)
                .load_str(&source)
                .map_err(|e| {
                    SpecError::Transaction(format!("cannot load {}: {e}", path.display()))
                })?;
        }
        Ok((spec, registry))
    }

    fn from_store(store: SpecStore, registry: SpatialRegistry) -> Arc<ServerState> {
        Arc::new(ServerState {
            store,
            registry,
            shutdown: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        })
    }

    /// In-memory server: no write-ahead log.
    pub fn new() -> SpecResult<Arc<ServerState>> {
        ServerState::with_load(&[])
    }

    /// In-memory server over the base image plus `load` files.
    pub fn with_load(load: &[PathBuf]) -> SpecResult<Arc<ServerState>> {
        let (spec, registry) = ServerState::build_base(load)?;
        Ok(ServerState::from_store(SpecStore::new(spec), registry))
    }

    /// Durable server with default durability options — see
    /// [`ServerState::durable_opts`].
    pub fn durable(path: &Path) -> SpecResult<(Arc<ServerState>, u64)> {
        ServerState::durable_opts(path, DurabilityOptions::default(), &[])
    }

    /// Durable server: recover from the checkpoint/WAL family at `path`
    /// (newest valid checkpoint + log suffix) over the base image plus
    /// `load` files, and append every subsequent commit. The base's
    /// fingerprint is checked against what is on disk — a changed load
    /// file is a hard error. Returns the state and the recovered head
    /// sequence number.
    pub fn durable_opts(
        path: &Path,
        opts: DurabilityOptions,
        load: &[PathBuf],
    ) -> SpecResult<(Arc<ServerState>, u64)> {
        let (spec, registry) = ServerState::build_base(load)?;
        let (store, head) = SpecStore::recover_durable(spec, path, opts)?;
        Ok((ServerState::from_store(store, registry), head))
    }

    /// The underlying MVCC store (tests and embedding).
    pub fn store(&self) -> &SpecStore {
        &self.store
    }

    /// The shared spatial registry.
    pub fn registry(&self) -> &SpatialRegistry {
        &self.registry
    }

    /// Ask the server to drain: stop accepting, let sessions finish (or
    /// cancel them after the grace period), checkpoint, exit. Safe from
    /// a signal handler — a single atomic store.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Has a drain been requested?
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Number of admitted, still-active sessions.
    pub fn active_sessions(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Admit a new session under `limit`, returning its id — or `None`
    /// when the server is full (the caller sends `server busy`).
    fn try_admit(&self, limit: usize) -> Option<u64> {
        let mut sessions = self.sessions.lock().unwrap();
        if sessions.len() >= limit {
            return None;
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        sessions.insert(id, CancelToken::new());
        Some(id)
    }

    /// Point session `id`'s registry slot at `token` (called whenever a
    /// session pins a new view, whose snapshot carries a fresh token).
    fn set_session_token(&self, id: u64, token: CancelToken) {
        if let Some(slot) = self.sessions.lock().unwrap().get_mut(&id) {
            *slot = token;
        }
    }

    fn unregister_session(&self, id: u64) {
        self.sessions.lock().unwrap().remove(&id);
    }

    /// Trip every active session's cancel token (drain, after grace).
    fn cancel_all_sessions(&self) {
        for token in self.sessions.lock().unwrap().values() {
            token.cancel();
        }
    }
}

/// Removes a session from the admission registry when its thread ends —
/// however it ends, including a panic inside the protocol loop.
struct SessionGuard {
    state: Arc<ServerState>,
    id: u64,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        self.state.unregister_session(self.id);
    }
}

/// Drive one session over a byte stream until `:quit` or EOF. This is
/// the whole protocol — the socket listeners just hand their streams
/// here, and in-process tests can run it over pipes. (Pipes block
/// without timeouts, so idle/drain ticks only fire on socket sessions.)
pub fn serve_connection(
    state: Arc<ServerState>,
    reader: impl BufRead,
    writer: impl Write,
) -> std::io::Result<()> {
    run_session(state, reader, writer, &ServeOptions::default(), None)
}

/// The protocol loop. `id` is the admission-registry slot for socket
/// sessions; direct [`serve_connection`] callers pass `None` and skip
/// registration. Reads that time out (socket read timeouts double as
/// ticks) check the drain flag and the idle budget; a partial line
/// survives across ticks in the reader's buffer.
fn run_session(
    state: Arc<ServerState>,
    mut reader: impl BufRead,
    mut writer: impl Write,
    opts: &ServeOptions,
    id: Option<u64>,
) -> std::io::Result<()> {
    let (seq, view) = state.store.snapshot();
    let mut session = Session {
        state,
        view,
        seq,
        pending: Delta::new(),
        txn: None,
        deadline: opts.statement_deadline,
        id,
    };
    session.arm_view();
    writeln!(
        writer,
        "gdp-serve — formal GDP requirements server (snapshot pinned at seq {seq}; :help for help)"
    )?;
    write!(writer, "{PROMPT}")?;
    writer.flush()?;
    let mut buffer = String::new();
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                last_activity = Instant::now();
                let raw = std::mem::take(&mut line);
                let trimmed = raw.trim();
                if buffer.is_empty() && trimmed.starts_with(':') {
                    if !session.command(trimmed, &mut writer)? {
                        return Ok(());
                    }
                    write!(writer, "{PROMPT}")?;
                    writer.flush()?;
                    continue;
                }
                buffer.push_str(raw.trim_end_matches(['\n', '\r']));
                buffer.push('\n');
                if trimmed.ends_with('.') {
                    let source = std::mem::take(&mut buffer);
                    session.statement(&source, &mut writer)?;
                }
                write!(
                    writer,
                    "{}",
                    if buffer.is_empty() {
                        PROMPT
                    } else {
                        CONT_PROMPT
                    }
                )?;
                writer.flush()?;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A read tick, not an error: any partial line stays in
                // `line` (read_line appends across calls).
                if session.state.is_shutting_down() {
                    writeln!(writer, "server draining; closing session.")?;
                    writer.flush()?;
                    return Ok(());
                }
                if let Some(idle) = opts.idle_timeout {
                    if last_activity.elapsed() >= idle {
                        writeln!(writer, "idle timeout; closing session.")?;
                        writer.flush()?;
                        return Ok(());
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// The stream-type surface the generic accept loop needs: duplex
/// socket streams that can split into a reader half and tick on reads.
trait SessionStream: Read + Write + Send + Sized + 'static {
    fn split_reader(&self) -> std::io::Result<Self>;
    fn read_tick(&self, tick: Duration) -> std::io::Result<()>;
}

impl SessionStream for TcpStream {
    fn split_reader(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }
    fn read_tick(&self, tick: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(tick))
    }
}

#[cfg(unix)]
impl SessionStream for UnixStream {
    fn split_reader(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }
    fn read_tick(&self, tick: Duration) -> std::io::Result<()> {
        self.set_read_timeout(Some(tick))
    }
}

/// One admitted socket session: register, run the protocol loop, always
/// unregister, and report how it ended to stderr with a peer tag — a
/// session error must never vanish, and must never take down anything
/// but its own connection.
fn run_socket_session<S: SessionStream>(
    state: Arc<ServerState>,
    stream: S,
    peer: String,
    opts: ServeOptions,
    id: u64,
) {
    let _guard = SessionGuard {
        state: Arc::clone(&state),
        id,
    };
    let result = (|| -> std::io::Result<()> {
        stream.read_tick(TICK)?;
        let reader = BufReader::new(stream.split_reader()?);
        run_session(state, reader, stream, &opts, Some(id))
    })();
    match result {
        Ok(()) => {}
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
            ) =>
        {
            // The client vanished mid-statement. Only this session dies;
            // its buffered :begin blocks die with it (they never touched
            // the store), and the store itself holds no open txn.
            eprintln!("gdp-serve: session {peer}: connection lost ({e})");
        }
        Err(e) => eprintln!("gdp-serve: session {peer}: {e}"),
    }
}

/// The generic hardened accept loop: poll a non-blocking `accept`,
/// admission-check each connection, spawn admitted sessions, and on
/// drain stop accepting, grace, cancel, join, checkpoint.
fn accept_loop<S: SessionStream>(
    state: Arc<ServerState>,
    opts: ServeOptions,
    mut accept: impl FnMut() -> std::io::Result<(S, String)>,
) -> std::io::Result<()> {
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !state.is_shutting_down() {
        match accept() {
            Ok((mut stream, peer)) => {
                handles.retain(|h| !h.is_finished());
                match state.try_admit(opts.max_sessions) {
                    Some(id) => {
                        let state = Arc::clone(&state);
                        let opts = opts.clone();
                        handles.push(std::thread::spawn(move || {
                            run_socket_session(state, stream, peer, opts, id)
                        }));
                    }
                    None => {
                        // Admission control: a clean, parseable refusal.
                        let _ = writeln!(
                            stream,
                            "server busy: {} active sessions (limit {}); try again later.",
                            state.active_sessions(),
                            opts.max_sessions
                        );
                        let _ = stream.flush();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    drain(&state, &opts, handles)
}

/// Graceful drain, in order: accepting has stopped (the caller's loop
/// exited); give in-flight statements `drain_grace` to finish — idle
/// sessions notice the flag at their next read tick and close
/// themselves; trip the cancel tokens of whatever is still mid-
/// statement; join every session thread; finally fold the drained head
/// into a checkpoint so restart replays nothing.
fn drain(
    state: &Arc<ServerState>,
    opts: &ServeOptions,
    handles: Vec<std::thread::JoinHandle<()>>,
) -> std::io::Result<()> {
    eprintln!(
        "gdp-serve: draining ({} active session(s))",
        state.active_sessions()
    );
    let deadline = Instant::now() + opts.drain_grace;
    while state.active_sessions() > 0 && Instant::now() < deadline {
        std::thread::sleep(TICK);
    }
    state.cancel_all_sessions();
    for handle in handles {
        let _ = handle.join();
    }
    if state.store.base_fingerprint().is_some() {
        match state.store.checkpoint() {
            Ok(seq) => eprintln!("gdp-serve: final checkpoint at seq {seq}"),
            Err(e) => eprintln!("gdp-serve: final checkpoint failed: {e}"),
        }
    }
    eprintln!("gdp-serve: drained; exiting");
    Ok(())
}

/// Accept TCP connections with the default [`ServeOptions`].
pub fn serve_tcp(state: Arc<ServerState>, listener: TcpListener) -> std::io::Result<()> {
    serve_tcp_opts(state, listener, ServeOptions::default())
}

/// Accept TCP connections, one thread (and one session) each, under
/// admission control, until a drain is requested
/// ([`ServerState::request_shutdown`] / `:shutdown`); then drain
/// gracefully and return.
pub fn serve_tcp_opts(
    state: Arc<ServerState>,
    listener: TcpListener,
    opts: ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    accept_loop(state, opts, move || {
        let (stream, addr) = listener.accept()?;
        stream.set_nonblocking(false)?;
        Ok((stream, addr.to_string()))
    })
}

/// Accept Unix-socket connections with the default [`ServeOptions`].
#[cfg(unix)]
pub fn serve_unix(state: Arc<ServerState>, listener: UnixListener) -> std::io::Result<()> {
    serve_unix_opts(state, listener, ServeOptions::default())
}

/// Accept Unix-socket connections, one thread each, under admission
/// control and graceful drain (the Unix twin of [`serve_tcp_opts`]).
#[cfg(unix)]
pub fn serve_unix_opts(
    state: Arc<ServerState>,
    listener: UnixListener,
    opts: ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    accept_loop(state, opts, move || {
        let (stream, _addr) = listener.accept()?;
        stream.set_nonblocking(false)?;
        Ok((stream, "unix".to_string()))
    })
}

struct Session {
    state: Arc<ServerState>,
    /// The pinned snapshot every read runs against.
    view: Specification,
    /// The sequence number `view` is pinned at.
    seq: u64,
    /// Deltas of this session's commits since its last `:audit -i`.
    pending: Delta,
    /// Statement blocks buffered since `:begin`, awaiting `:commit`.
    txn: Option<Vec<String>>,
    /// Per-statement wall-clock deadline (from [`ServeOptions`]).
    deadline: Option<Duration>,
    /// Admission-registry id for socket sessions (drain cancellation).
    id: Option<u64>,
}

impl Session {
    /// Wire the current view into the session plumbing: apply the
    /// per-statement deadline and (socket sessions) point the drain
    /// registry at the view's fresh cancel token.
    fn arm_view(&mut self) {
        self.view.set_deadline(self.deadline);
        if let Some(id) = self.id {
            self.state.set_session_token(id, self.view.cancel_token());
        }
    }

    /// Re-pin the session at the store's head.
    fn repin(&mut self) {
        let (seq, view) = self.state.store.snapshot();
        self.seq = seq;
        self.view = view;
        self.arm_view();
    }

    /// Handle one completed statement block.
    fn statement(&mut self, source: &str, w: &mut impl Write) -> std::io::Result<()> {
        if source.trim_start().starts_with("?-") {
            // Pure query: runs on the pinned snapshot, never takes the
            // write lock, and is untouched by concurrent commits.
            return self.run_queries(source, w);
        }
        if let Some(buffered) = self.txn.as_mut() {
            buffered.push(source.to_string());
            writeln!(
                w,
                "buffered ({} block(s); :commit applies).",
                buffered.len()
            )?;
            return Ok(());
        }
        self.apply(&[source.to_string()], w)
    }

    /// Load a query-only source against the pinned snapshot and print
    /// the answers.
    fn run_queries(&mut self, source: &str, w: &mut impl Write) -> std::io::Result<()> {
        match Loader::with_spatial(&mut self.view, &self.state.registry).load_str(source) {
            Ok(summary) => {
                for answers in &summary.query_results {
                    write_answers(w, answers)?;
                }
                Ok(())
            }
            Err(e) => {
                for d in e.diagnostics() {
                    writeln!(w, "error: {d}")?;
                }
                Ok(())
            }
        }
    }

    /// Commit one or more statement blocks atomically and re-pin at the
    /// new head on success.
    fn apply(&mut self, sources: &[String], w: &mut impl Write) -> std::io::Result<()> {
        let registry = self.state.registry.clone();
        let deadline = self.deadline;
        let result = self.state.store.commit(|spec| {
            // The statement deadline also bounds the commit block; the
            // live spec's deadline is restored on every exit path.
            spec.set_deadline(deadline);
            let out = (|| {
                let mut summaries = Vec::new();
                for source in sources {
                    let summary = Loader::with_spatial(spec, &registry)
                        .load_str(source)
                        .map_err(|e| {
                            let rendered: Vec<String> =
                                e.diagnostics().iter().map(|d| d.to_string()).collect();
                            SpecError::Transaction(rendered.join("; "))
                        })?;
                    summaries.push(summary);
                }
                Ok(summaries)
            })();
            spec.set_deadline(None);
            out
        });
        match result {
            Ok((committed, summaries)) => {
                let (mut facts, mut rules, mut constraints) = (0, 0, 0);
                for summary in &summaries {
                    for answers in &summary.query_results {
                        write_answers(w, answers)?;
                    }
                    facts += summary.facts;
                    rules += summary.rules;
                    constraints += summary.constraints;
                }
                writeln!(
                    w,
                    "ok ({facts} facts, {rules} rules, {constraints} constraints) committed as seq {}",
                    committed.seq
                )?;
                self.pending.merge(committed.delta);
                self.repin();
            }
            Err(e) => {
                writeln!(w, "rolled back: {}", render_spec_error(&self.view, &e))?;
            }
        }
        Ok(())
    }

    /// Handle one `:`-command; `Ok(false)` closes the session.
    fn command(&mut self, input: &str, w: &mut impl Write) -> std::io::Result<bool> {
        let (cmd, rest) = match input.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (input, ""),
        };
        match cmd {
            ":quit" | ":q" | ":exit" => return Ok(false),
            ":help" | ":h" => writeln!(w, "{HELP}")?,
            ":seq" => writeln!(
                w,
                "pinned at seq {}; head is seq {}.",
                self.seq,
                self.state.store.head_seq()
            )?,
            ":snapshot" => match rest {
                "" => {
                    self.repin();
                    writeln!(w, "re-pinned at head (seq {}).", self.seq)?;
                }
                n => match n.parse::<u64>() {
                    Ok(seq) => match self.state.store.snapshot_at(seq) {
                        Ok(view) => {
                            self.view = view;
                            self.seq = seq;
                            self.arm_view();
                            writeln!(w, "pinned at seq {seq}.")?;
                        }
                        Err(e) => writeln!(w, "error: {e}")?,
                    },
                    Err(_) => writeln!(w, "usage: :snapshot [SEQ]")?,
                },
            },
            ":shutdown" => {
                self.state.request_shutdown();
                writeln!(
                    w,
                    "draining: the server has stopped accepting and will exit; goodbye."
                )?;
                return Ok(false);
            }
            ":begin" => {
                if self.txn.is_some() {
                    writeln!(w, "error: transaction error: a transaction is already open")?;
                } else {
                    self.txn = Some(Vec::new());
                    writeln!(w, "transaction open (:commit or :rollback).")?;
                }
            }
            ":commit" => match self.txn.take() {
                None => writeln!(w, "error: transaction error: no transaction is open")?,
                Some(sources) if sources.is_empty() => {
                    writeln!(w, "nothing to commit.")?;
                }
                Some(sources) => self.apply(&sources, w)?,
            },
            ":rollback" => match self.txn.take() {
                None => writeln!(w, "error: transaction error: no transaction is open")?,
                Some(sources) => writeln!(w, "discarded {} buffered block(s).", sources.len())?,
            },
            ":check" => match self.view.check_consistency() {
                Ok(violations) if violations.is_empty() => {
                    writeln!(w, "consistent (no constraint violations).")?;
                }
                Ok(violations) => {
                    for v in violations {
                        writeln!(w, "{v}")?;
                    }
                }
                Err(e) => writeln!(w, "error: {}", render_spec_error(&self.view, &e))?,
            },
            ":audit" => {
                let (workers, incremental) = match parse_audit_args(rest) {
                    Ok(parsed) => parsed,
                    Err(msg) => {
                        writeln!(w, "{msg}")?;
                        return Ok(true);
                    }
                };
                let result = if incremental {
                    if !self.view.incremental_enabled() {
                        self.view.set_incremental(true);
                    }
                    self.view.audit_incremental(&self.pending, workers)
                } else {
                    self.view.audit_world_views(workers)
                };
                if incremental && result.is_ok() {
                    self.pending = Delta::new();
                }
                match result {
                    Ok(report) => {
                        if report.violations.is_empty() && report.is_complete() {
                            writeln!(
                                w,
                                "consistent across {} world-view member(s) ({} workers).",
                                report.per_model.len(),
                                report.workers
                            )?;
                        } else {
                            for v in &report.violations {
                                writeln!(w, "{v}")?;
                            }
                            writeln!(
                                w,
                                "{} violation(s); {} workers",
                                report.violations.len(),
                                report.workers
                            )?;
                        }
                        for f in &report.incomplete {
                            writeln!(w, "incomplete: {} — {}", f.model, f.error)?;
                        }
                        let s = report.stats;
                        writeln!(
                            w,
                            "merged: {} steps, {} clause resolutions, table {} hit ({} snapshot) / {} miss",
                            s.steps, s.resolutions, s.table_hits, s.snapshot_hits, s.table_misses
                        )?;
                    }
                    Err(e) => writeln!(w, "error: {}", render_spec_error(&self.view, &e))?,
                }
            }
            ":views" => {
                writeln!(w, "world view: {}", self.view.world_view().join(", "))?;
                writeln!(w, "meta view:  {}", self.view.meta_view().join(", "))?;
            }
            ":stats" => {
                writeln!(
                    w,
                    "{} clauses across {} predicates (snapshot seq {}).",
                    self.view.kb().clause_count(),
                    self.view.kb().predicate_count(),
                    self.seq
                )?;
                let s = self.view.solver_stats();
                writeln!(
                    w,
                    "last query: {} steps, {} clause resolutions, table {} hit ({} snapshot) / {} miss",
                    s.steps, s.resolutions, s.table_hits, s.snapshot_hits, s.table_misses
                )?;
            }
            other => writeln!(w, "unknown command {other} (:help for help)")?,
        }
        Ok(true)
    }
}

/// Print one query's answers the way the shell does, deduplicating
/// repeated derivations.
fn write_answers(w: &mut impl Write, answers: &[gdp_core::Answer]) -> std::io::Result<()> {
    if answers.is_empty() {
        return writeln!(w, "no.");
    }
    let mut seen = Vec::new();
    for answer in answers {
        let line = if answer.bindings().is_empty() {
            "yes.".to_string()
        } else {
            answer
                .bindings()
                .iter()
                .map(|(name, value)| format!("{name} = {value}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if !seen.contains(&line) {
            writeln!(w, "{line}")?;
            seen.push(line);
        }
    }
    Ok(())
}

/// Render a specification error, reporting interrupts and deadlines as
/// first-class outcomes (the shell's convention).
fn render_spec_error(spec: &Specification, e: &SpecError) -> String {
    match e {
        SpecError::Engine(EngineError::Cancelled) => {
            format!("cancelled. ({} steps used)", spec.solver_stats().steps)
        }
        SpecError::Engine(EngineError::DeadlineExceeded { .. }) => {
            format!(
                "deadline exceeded. ({} steps used)",
                spec.solver_stats().steps
            )
        }
        other => other.to_string(),
    }
}

/// Parse `:audit` arguments: any order of `-j N` and `-i`.
fn parse_audit_args(rest: &str) -> Result<(usize, bool), String> {
    let usage = || "usage: :audit [-j N] [-i]".to_string();
    let mut workers = None;
    let mut incremental = false;
    let mut parts = rest.split_whitespace();
    while let Some(part) = parts.next() {
        match part {
            "-i" => incremental = true,
            "-j" => {
                let n = parts.next().ok_or_else(usage)?;
                workers = Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|v| *v >= 1)
                        .ok_or_else(usage)?,
                );
            }
            _ => return Err(usage()),
        }
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    Ok((workers, incremental))
}
