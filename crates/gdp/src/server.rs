//! The serving layer behind `gdp-serve`: REPL-protocol sessions over any
//! byte stream, with MVCC snapshot isolation per session.
//!
//! One process hosts one [`ServerState`] — a [`SpecStore`] plus the shared
//! spatial registry — and any number of concurrent sessions. Each session
//! pins a *snapshot* of the specification (a generation-tagged, copy-on-
//! write view; see [`SpecStore::snapshot`]) and runs every query, `:check`
//! and `:audit` against it: a writer committing on another connection
//! never changes what an open session observes until it re-pins.
//!
//! The wire protocol is the `gdp-repl` protocol verbatim — statements
//! terminated by `.`, `:`-commands for session control, one `gdp> `
//! prompt after each response — so the shell and the server speak the
//! same language, and anything scriptable against one drives the other.
//! Session-level additions:
//!
//! * statement blocks outside a transaction commit **atomically**: any
//!   diagnostic rolls the whole block back (the shell instead applies
//!   the statements that parsed);
//! * `:begin` buffers statement blocks client-side of the store and
//!   `:commit` applies them as one commit; `:rollback` discards them;
//! * `:snapshot [SEQ]` re-pins the session (head, or a retained earlier
//!   commit); `:seq` shows the pinned and head sequence numbers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::Arc;

use gdp_core::{SpecError, SpecResult, SpecStore, Specification};
use gdp_engine::{Delta, EngineError};
use gdp_lang::Loader;
use gdp_spatial::SpatialRegistry;

const PROMPT: &str = "gdp> ";
const CONT_PROMPT: &str = "...> ";

const HELP: &str = "\
statements  any specification-language statement ending in `.`
            (facts, rules, constraints, #directives, `?- query.`)
            queries run against this session's pinned snapshot;
            other statements commit atomically to the live store
:begin      buffer statement blocks; :commit applies them as ONE commit
:commit     commit the buffered blocks (all-or-nothing)
:rollback   discard the buffered blocks
:snapshot [SEQ]  re-pin this session: at head, or at a retained commit
:seq        this session's pinned sequence and the store's head
:check      consistency check against the pinned snapshot
:audit [-j N] [-i]  parallel world-view audit of the pinned snapshot
:views      the active world view and meta-view
:stats      knowledge-base and solver statistics (pinned snapshot)
:help       this text
:quit       close this session";

/// Shared server state: the MVCC store and the spatial registry every
/// session's loader consults. Sessions hold it behind an [`Arc`].
pub struct ServerState {
    store: SpecStore,
    registry: SpatialRegistry,
}

/// The base image every `gdp-serve` process starts from: the standard
/// spatial + temporal specification with the fuzzy rule packs registered
/// (exactly what `gdp-repl` builds). Durable stores replay their WAL over
/// this base, so it must stay deterministic.
fn base_spec() -> SpecResult<(Specification, SpatialRegistry)> {
    let (mut spec, registry) = crate::standard_spec()?;
    spec.register_meta_model(gdp_fuzzy::unified_fuzzy(gdp_fuzzy::UnifyPolicy::Max));
    Ok((spec, registry))
}

impl ServerState {
    /// In-memory server: no write-ahead log.
    pub fn new() -> SpecResult<Arc<ServerState>> {
        let (spec, registry) = base_spec()?;
        Ok(Arc::new(ServerState {
            store: SpecStore::new(spec),
            registry,
        }))
    }

    /// Durable server: open (or create) the write-ahead log at `path`,
    /// replay any committed deltas over the base image, and append every
    /// subsequent commit to it. Returns the state and the number of
    /// commits replayed.
    pub fn durable(path: &Path) -> SpecResult<(Arc<ServerState>, u64)> {
        let (spec, registry) = base_spec()?;
        let (store, replayed) = SpecStore::recover(spec, path)?;
        Ok((Arc::new(ServerState { store, registry }), replayed))
    }

    /// The underlying MVCC store (tests and embedding).
    pub fn store(&self) -> &SpecStore {
        &self.store
    }

    /// The shared spatial registry.
    pub fn registry(&self) -> &SpatialRegistry {
        &self.registry
    }
}

/// Drive one session over a byte stream until `:quit` or EOF. This is
/// the whole protocol — the socket listeners just hand their streams
/// here, and in-process tests can run it over pipes.
pub fn serve_connection(
    state: Arc<ServerState>,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    let (seq, view) = state.store.snapshot();
    let mut session = Session {
        state,
        view,
        seq,
        pending: Delta::new(),
        txn: None,
    };
    writeln!(
        writer,
        "gdp-serve — formal GDP requirements server (snapshot pinned at seq {seq}; :help for help)"
    )?;
    write!(writer, "{PROMPT}")?;
    writer.flush()?;
    let mut buffer = String::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') {
            if !session.command(trimmed, &mut writer)? {
                return Ok(());
            }
            write!(writer, "{PROMPT}")?;
            writer.flush()?;
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with('.') {
            let source = std::mem::take(&mut buffer);
            session.statement(&source, &mut writer)?;
        }
        write!(
            writer,
            "{}",
            if buffer.is_empty() {
                PROMPT
            } else {
                CONT_PROMPT
            }
        )?;
        writer.flush()?;
    }
    Ok(())
}

/// Accept TCP connections forever, one thread (and one session) each.
pub fn serve_tcp(state: Arc<ServerState>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone()?);
            serve_connection(state, reader, stream)
        });
    }
    Ok(())
}

/// Accept Unix-socket connections forever, one thread each.
#[cfg(unix)]
pub fn serve_unix(state: Arc<ServerState>, listener: UnixListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone()?);
            serve_connection(state, reader, stream)
        });
    }
    Ok(())
}

struct Session {
    state: Arc<ServerState>,
    /// The pinned snapshot every read runs against.
    view: Specification,
    /// The sequence number `view` is pinned at.
    seq: u64,
    /// Deltas of this session's commits since its last `:audit -i`.
    pending: Delta,
    /// Statement blocks buffered since `:begin`, awaiting `:commit`.
    txn: Option<Vec<String>>,
}

impl Session {
    /// Re-pin the session at the store's head.
    fn repin(&mut self) {
        let (seq, view) = self.state.store.snapshot();
        self.seq = seq;
        self.view = view;
    }

    /// Handle one completed statement block.
    fn statement(&mut self, source: &str, w: &mut impl Write) -> std::io::Result<()> {
        if source.trim_start().starts_with("?-") {
            // Pure query: runs on the pinned snapshot, never takes the
            // write lock, and is untouched by concurrent commits.
            return self.run_queries(source, w);
        }
        if let Some(buffered) = self.txn.as_mut() {
            buffered.push(source.to_string());
            writeln!(
                w,
                "buffered ({} block(s); :commit applies).",
                buffered.len()
            )?;
            return Ok(());
        }
        self.apply(&[source.to_string()], w)
    }

    /// Load a query-only source against the pinned snapshot and print
    /// the answers.
    fn run_queries(&mut self, source: &str, w: &mut impl Write) -> std::io::Result<()> {
        match Loader::with_spatial(&mut self.view, &self.state.registry).load_str(source) {
            Ok(summary) => {
                for answers in &summary.query_results {
                    write_answers(w, answers)?;
                }
                Ok(())
            }
            Err(e) => {
                for d in e.diagnostics() {
                    writeln!(w, "error: {d}")?;
                }
                Ok(())
            }
        }
    }

    /// Commit one or more statement blocks atomically and re-pin at the
    /// new head on success.
    fn apply(&mut self, sources: &[String], w: &mut impl Write) -> std::io::Result<()> {
        let registry = self.state.registry.clone();
        let result = self.state.store.commit(|spec| {
            let mut summaries = Vec::new();
            for source in sources {
                let summary = Loader::with_spatial(spec, &registry)
                    .load_str(source)
                    .map_err(|e| {
                        let rendered: Vec<String> =
                            e.diagnostics().iter().map(|d| d.to_string()).collect();
                        SpecError::Transaction(rendered.join("; "))
                    })?;
                summaries.push(summary);
            }
            Ok(summaries)
        });
        match result {
            Ok((committed, summaries)) => {
                let (mut facts, mut rules, mut constraints) = (0, 0, 0);
                for summary in &summaries {
                    for answers in &summary.query_results {
                        write_answers(w, answers)?;
                    }
                    facts += summary.facts;
                    rules += summary.rules;
                    constraints += summary.constraints;
                }
                writeln!(
                    w,
                    "ok ({facts} facts, {rules} rules, {constraints} constraints) committed as seq {}",
                    committed.seq
                )?;
                self.pending.merge(committed.delta);
                self.repin();
            }
            Err(e) => {
                writeln!(w, "rolled back: {}", render_spec_error(&self.view, &e))?;
            }
        }
        Ok(())
    }

    /// Handle one `:`-command; `Ok(false)` closes the session.
    fn command(&mut self, input: &str, w: &mut impl Write) -> std::io::Result<bool> {
        let (cmd, rest) = match input.split_once(' ') {
            Some((c, r)) => (c, r.trim()),
            None => (input, ""),
        };
        match cmd {
            ":quit" | ":q" | ":exit" => return Ok(false),
            ":help" | ":h" => writeln!(w, "{HELP}")?,
            ":seq" => writeln!(
                w,
                "pinned at seq {}; head is seq {}.",
                self.seq,
                self.state.store.head_seq()
            )?,
            ":snapshot" => match rest {
                "" => {
                    self.repin();
                    writeln!(w, "re-pinned at head (seq {}).", self.seq)?;
                }
                n => match n.parse::<u64>() {
                    Ok(seq) => match self.state.store.snapshot_at(seq) {
                        Ok(view) => {
                            self.view = view;
                            self.seq = seq;
                            writeln!(w, "pinned at seq {seq}.")?;
                        }
                        Err(e) => writeln!(w, "error: {e}")?,
                    },
                    Err(_) => writeln!(w, "usage: :snapshot [SEQ]")?,
                },
            },
            ":begin" => {
                if self.txn.is_some() {
                    writeln!(w, "error: transaction error: a transaction is already open")?;
                } else {
                    self.txn = Some(Vec::new());
                    writeln!(w, "transaction open (:commit or :rollback).")?;
                }
            }
            ":commit" => match self.txn.take() {
                None => writeln!(w, "error: transaction error: no transaction is open")?,
                Some(sources) if sources.is_empty() => {
                    writeln!(w, "nothing to commit.")?;
                }
                Some(sources) => self.apply(&sources, w)?,
            },
            ":rollback" => match self.txn.take() {
                None => writeln!(w, "error: transaction error: no transaction is open")?,
                Some(sources) => writeln!(w, "discarded {} buffered block(s).", sources.len())?,
            },
            ":check" => match self.view.check_consistency() {
                Ok(violations) if violations.is_empty() => {
                    writeln!(w, "consistent (no constraint violations).")?;
                }
                Ok(violations) => {
                    for v in violations {
                        writeln!(w, "{v}")?;
                    }
                }
                Err(e) => writeln!(w, "error: {}", render_spec_error(&self.view, &e))?,
            },
            ":audit" => {
                let (workers, incremental) = match parse_audit_args(rest) {
                    Ok(parsed) => parsed,
                    Err(msg) => {
                        writeln!(w, "{msg}")?;
                        return Ok(true);
                    }
                };
                let result = if incremental {
                    if !self.view.incremental_enabled() {
                        self.view.set_incremental(true);
                    }
                    self.view.audit_incremental(&self.pending, workers)
                } else {
                    self.view.audit_world_views(workers)
                };
                if incremental && result.is_ok() {
                    self.pending = Delta::new();
                }
                match result {
                    Ok(report) => {
                        if report.violations.is_empty() && report.is_complete() {
                            writeln!(
                                w,
                                "consistent across {} world-view member(s) ({} workers).",
                                report.per_model.len(),
                                report.workers
                            )?;
                        } else {
                            for v in &report.violations {
                                writeln!(w, "{v}")?;
                            }
                            writeln!(
                                w,
                                "{} violation(s); {} workers",
                                report.violations.len(),
                                report.workers
                            )?;
                        }
                        for f in &report.incomplete {
                            writeln!(w, "incomplete: {} — {}", f.model, f.error)?;
                        }
                        let s = report.stats;
                        writeln!(
                            w,
                            "merged: {} steps, {} clause resolutions, table {} hit ({} snapshot) / {} miss",
                            s.steps, s.resolutions, s.table_hits, s.snapshot_hits, s.table_misses
                        )?;
                    }
                    Err(e) => writeln!(w, "error: {}", render_spec_error(&self.view, &e))?,
                }
            }
            ":views" => {
                writeln!(w, "world view: {}", self.view.world_view().join(", "))?;
                writeln!(w, "meta view:  {}", self.view.meta_view().join(", "))?;
            }
            ":stats" => {
                writeln!(
                    w,
                    "{} clauses across {} predicates (snapshot seq {}).",
                    self.view.kb().clause_count(),
                    self.view.kb().predicate_count(),
                    self.seq
                )?;
                let s = self.view.solver_stats();
                writeln!(
                    w,
                    "last query: {} steps, {} clause resolutions, table {} hit ({} snapshot) / {} miss",
                    s.steps, s.resolutions, s.table_hits, s.snapshot_hits, s.table_misses
                )?;
            }
            other => writeln!(w, "unknown command {other} (:help for help)")?,
        }
        Ok(true)
    }
}

/// Print one query's answers the way the shell does, deduplicating
/// repeated derivations.
fn write_answers(w: &mut impl Write, answers: &[gdp_core::Answer]) -> std::io::Result<()> {
    if answers.is_empty() {
        return writeln!(w, "no.");
    }
    let mut seen = Vec::new();
    for answer in answers {
        let line = if answer.bindings().is_empty() {
            "yes.".to_string()
        } else {
            answer
                .bindings()
                .iter()
                .map(|(name, value)| format!("{name} = {value}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        if !seen.contains(&line) {
            writeln!(w, "{line}")?;
            seen.push(line);
        }
    }
    Ok(())
}

/// Render a specification error, reporting interrupts and deadlines as
/// first-class outcomes (the shell's convention).
fn render_spec_error(spec: &Specification, e: &SpecError) -> String {
    match e {
        SpecError::Engine(EngineError::Cancelled) => {
            format!("cancelled. ({} steps used)", spec.solver_stats().steps)
        }
        SpecError::Engine(EngineError::DeadlineExceeded { .. }) => {
            format!(
                "deadline exceeded. ({} steps used)",
                spec.solver_stats().steps
            )
        }
        other => other.to_string(),
    }
}

/// Parse `:audit` arguments: any order of `-j N` and `-i`.
fn parse_audit_args(rest: &str) -> Result<(usize, bool), String> {
    let usage = || "usage: :audit [-j N] [-i]".to_string();
    let mut workers = None;
    let mut incremental = false;
    let mut parts = rest.split_whitespace();
    while let Some(part) = parts.next() {
        match part {
            "-i" => incremental = true,
            "-j" => {
                let n = parts.next().ok_or_else(usage)?;
                workers = Some(
                    n.parse::<usize>()
                        .ok()
                        .filter(|v| *v >= 1)
                        .ok_or_else(usage)?,
                );
            }
            _ => return Err(usage()),
        }
    }
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    Ok((workers, incremental))
}
