//! # gdp — Formal Specification of Geographic Data Processing Requirements
//!
//! An executable implementation of the formalism from Gruia-Catalin Roman,
//! *"Formal Specification of Geographic Data Processing Requirements"*
//! (Proc. 2nd International Conference on Data Engineering, 1986; IEEE CS
//! Outstanding Paper Award; reprinted IEEE TKDE 2(4), 1990).
//!
//! The formalism specifies the *data and knowledge requirements* of
//! geographic data processing systems in a representation-independent,
//! executable subset of first-order logic, with second-order meta-rules
//! for user-defined reasoning about space, time, and accuracy. This crate
//! re-exports the whole system:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`engine`] | — | the logic substrate (SLD resolution, NAF, aggregation) |
//! | [`core`] | §II–IV | objects, facts, virtual facts, domains, constraints, models, world views, meta-models |
//! | [`spatial`] | §V | absolute/logical space, the four spatial operators, abstraction rules |
//! | [`temporal`] | §VI | intervals, temporal operators, comprehension/continuity, `now` |
//! | [`fuzzy`] | §VII | fuzzy logic, thresholds, the unified operator, `AC` propagation |
//! | [`lang`] | — | the concrete textual syntax the prototype implies |
//! | [`datagen`] | — | synthetic geography (substitute for DMA data) |
//! | [`render`] | §I | ASCII/PPM/SVG rendering of logical information |
//!
//! ## Quickstart
//!
//! ```
//! use gdp::prelude::*;
//!
//! let mut spec = Specification::new();
//! gdp::lang::load(&mut spec, r#"
//!     bridge(b1). bridge(b2). open(b1).
//!     closed(X) :- bridge(X), not(open(X)).
//! "#).unwrap();
//! assert!(spec.provable(FactPat::new("closed").arg("b2")).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod server;

pub use gdp_core as core;
pub use gdp_datagen as datagen;
pub use gdp_engine as engine;
pub use gdp_fuzzy as fuzzy;
pub use gdp_lang as lang;
pub use gdp_render as render;
pub use gdp_spatial as spatial;
pub use gdp_temporal as temporal;

/// The most common imports, together.
pub mod prelude {
    pub use gdp_core::{
        Answer, ArgsPat, AuditFailure, AuditReport, CmpOp, Constraint, DomainDef, FactPat, Formula,
        IntervalPat, MetaModel, Pat, RawClause, RetryPolicy, Rule, Sort, SortEnforcement,
        SpaceQual, SpecError, SpecResult, Specification, TimeQual, Violation,
    };
    pub use gdp_engine::{
        Budget, CancelToken, ChaosConfig, CyclePolicy, EngineError, KnowledgeBase, ParallelSolver,
        Solver, Term,
    };
    pub use gdp_spatial::{GridResolution, Point, SpatialRegistry};
    pub use gdp_temporal::Interval;
}

/// Build a specification with the spatial and temporal layers installed
/// with their default meta-models, returning the spatial registry handle.
///
/// This is the configuration most examples and experiments start from;
/// fuzzy meta-models stay opt-in (register what you need from
/// [`fuzzy::ops`]).
pub fn standard_spec(
) -> gdp_core::SpecResult<(gdp_core::Specification, gdp_spatial::SpatialRegistry)> {
    let mut spec = gdp_core::Specification::new();
    let registry = gdp_spatial::install_default(&mut spec)?;
    gdp_temporal::install_default(&mut spec)?;
    Ok((spec, registry))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn standard_spec_has_both_layers() {
        let (spec, _reg) = crate::standard_spec().unwrap();
        let meta = spec.meta_view();
        assert!(meta.iter().any(|m| m == "spatial_uniform"));
        assert!(meta.iter().any(|m| m == "temporal_uniform"));
    }

    #[test]
    fn layers_compose_spacetime_facts() {
        let (mut spec, reg) = crate::standard_spec().unwrap();
        reg.add_grid(&mut spec, "g", GridResolution::square(0.0, 0.0, 10.0, 4, 4))
            .unwrap();
        // A patch fact valid only during [1970, 1980).
        spec.assert_fact(
            FactPat::new("flooded")
                .arg("plain")
                .space(SpaceQual::AreaUniform {
                    res: Pat::atom("g"),
                    at: Pat::app("pt", vec![Pat::Float(5.0), Pat::Float(5.0)]),
                })
                .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                    1970, 1980,
                ))),
        )
        .unwrap();
        let probe = |x: f64, t: i64| {
            FactPat::new("flooded")
                .arg("plain")
                .at(Pat::app("pt", vec![Pat::Float(x), Pat::Float(3.0)]))
                .time(TimeQual::At(Pat::Int(t)))
        };
        assert!(spec.provable(probe(3.0, 1975)).unwrap());
        assert!(!spec.provable(probe(3.0, 1985)).unwrap());
        assert!(!spec.provable(probe(13.0, 1975)).unwrap());
    }
}
