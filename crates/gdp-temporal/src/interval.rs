//! Time intervals with independently open/closed ends (§VI.B).
//!
//! The paper extends the interval-uniform operator to supply "an interval
//! definition in place of the resolution function", covering all four
//! open/closed end combinations: `&u[t1,t2]`, `&u(t1,t2]`, `&u[t1,t2)`,
//! `&u(t1,t2)`.

use gdp_engine::Term;

/// A time interval over the real time axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Lower bound included?
    pub lo_closed: bool,
    /// Upper bound included?
    pub hi_closed: bool,
}

impl Interval {
    /// Closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            lo_closed: true,
            hi_closed: true,
        }
    }

    /// Half-open interval `[lo, hi)`.
    pub fn right_open(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            lo_closed: true,
            hi_closed: false,
        }
    }

    /// Open interval `(lo, hi)`.
    pub fn open(lo: f64, hi: f64) -> Interval {
        Interval {
            lo,
            hi,
            lo_closed: false,
            hi_closed: false,
        }
    }

    /// Does the interval contain instant `t`?
    pub fn contains(&self, t: f64) -> bool {
        let lo_ok = if self.lo_closed {
            t >= self.lo
        } else {
            t > self.lo
        };
        let hi_ok = if self.hi_closed {
            t <= self.hi
        } else {
            t < self.hi
        };
        lo_ok && hi_ok
    }

    /// Is the interval empty (no instant satisfies it)?
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_closed && self.hi_closed))
    }

    /// Is `self` entirely contained in `other`?
    pub fn subset_of(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok =
            self.lo > other.lo || (self.lo == other.lo && (other.lo_closed || !self.lo_closed));
        let hi_ok =
            self.hi < other.hi || (self.hi == other.hi && (other.hi_closed || !self.hi_closed));
        lo_ok && hi_ok
    }

    /// Do the intervals share at least one instant?
    pub fn overlaps(&self, other: &Interval) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        // Compare the later lower bound against the earlier upper bound.
        let (lo, lo_closed) = if self.lo > other.lo {
            (self.lo, self.lo_closed)
        } else if other.lo > self.lo {
            (other.lo, other.lo_closed)
        } else {
            (self.lo, self.lo_closed && other.lo_closed)
        };
        let (hi, hi_closed) = if self.hi < other.hi {
            (self.hi, self.hi_closed)
        } else if other.hi < self.hi {
            (other.hi, other.hi_closed)
        } else {
            (self.hi, self.hi_closed && other.hi_closed)
        };
        lo < hi || (lo == hi && lo_closed && hi_closed)
    }

    /// Encode as `iv(Lo, Hi, closed|open, closed|open)`.
    pub fn to_term(&self) -> Term {
        let end = |closed: bool| Term::atom(if closed { "closed" } else { "open" });
        Term::pred(
            "iv",
            vec![
                Term::float(self.lo),
                Term::float(self.hi),
                end(self.lo_closed),
                end(self.hi_closed),
            ],
        )
    }

    /// Decode from a ground `iv/4` term (integer bounds accepted).
    pub fn from_term(t: &Term) -> Option<Interval> {
        if t.functor()?.as_str() != "iv" || t.arity() != Some(4) {
            return None;
        }
        let args = t.args();
        let end = |t: &Term| match t.as_atom()?.as_str().as_str() {
            "closed" => Some(true),
            "open" => Some(false),
            _ => None,
        };
        Some(Interval {
            lo: args[0].as_f64()?,
            hi: args[1].as_f64()?,
            lo_closed: end(&args[2])?,
            hi_closed: end(&args[3])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_respects_ends() {
        let c = Interval::closed(1.0, 2.0);
        assert!(c.contains(1.0) && c.contains(2.0) && c.contains(1.5));
        let o = Interval::open(1.0, 2.0);
        assert!(!o.contains(1.0) && !o.contains(2.0) && o.contains(1.5));
        let ro = Interval::right_open(1.0, 2.0);
        assert!(ro.contains(1.0) && !ro.contains(2.0));
    }

    #[test]
    fn emptiness() {
        assert!(Interval::closed(2.0, 1.0).is_empty());
        assert!(Interval::open(1.0, 1.0).is_empty());
        assert!(!Interval::closed(1.0, 1.0).is_empty());
    }

    #[test]
    fn subset_relation() {
        let big = Interval::closed(0.0, 10.0);
        assert!(Interval::closed(2.0, 3.0).subset_of(&big));
        assert!(Interval::closed(0.0, 10.0).subset_of(&big));
        assert!(!Interval::closed(0.0, 11.0).subset_of(&big));
        // Open superset does not contain closed endpoints.
        let open_big = Interval::open(0.0, 10.0);
        assert!(!Interval::closed(0.0, 5.0).subset_of(&open_big));
        assert!(Interval::open(0.0, 5.0).subset_of(&open_big));
        // Empty intervals are subsets of everything.
        assert!(Interval::open(5.0, 5.0).subset_of(&Interval::closed(99.0, 100.0)));
    }

    #[test]
    fn overlap_relation() {
        let a = Interval::closed(0.0, 5.0);
        assert!(a.overlaps(&Interval::closed(5.0, 9.0))); // touch at closed 5
        assert!(!a.overlaps(&Interval::open(5.0, 9.0))); // open end excludes 5
        assert!(!Interval::right_open(0.0, 5.0).overlaps(&Interval::closed(5.0, 9.0)));
        assert!(a.overlaps(&Interval::closed(-3.0, 0.5)));
        assert!(!a.overlaps(&Interval::closed(6.0, 7.0)));
    }

    #[test]
    fn term_round_trip() {
        let iv = Interval::right_open(1970.0, 1980.0);
        let t = iv.to_term();
        assert_eq!(t.to_string(), "iv(1970.0, 1980.0, closed, open)");
        assert_eq!(Interval::from_term(&t), Some(iv));
        // Integer bounds accepted on decode.
        let t2 = Term::pred(
            "iv",
            vec![
                Term::int(1),
                Term::int(2),
                Term::atom("closed"),
                Term::atom("closed"),
            ],
        );
        assert_eq!(Interval::from_term(&t2), Some(Interval::closed(1.0, 2.0)));
    }
}
