//! Temporal operators and reasoning models as meta-models (§VI).
//!
//! "All the spatial operators have temporal counterparts … temporal logic
//! may be seen as a special case of the positional logic." Each constructor
//! below returns one activatable rule pack:
//!
//! * [`temporal_simple`] — time-independent facts hold at every instant;
//! * [`interval_uniform`] / [`interval_sampled`] / [`interval_averaged`] —
//!   the `&u`, `&s`, `&a` operators over arbitrary intervals (§VI.B);
//! * [`comprehension_principle`] and [`continuity_assumption`] — the two
//!   Clifford & Warren models the paper formalizes (§VI.B);
//! * [`now_model`] — `now`, `past`, `present`, `future`;
//! * [`cyclic_phenomena`] — the cyclic extension the paper mentions.

use gdp_core::{MetaModel, Pat, RawClause};

fn v(name: &str) -> Pat {
    Pat::var(name)
}

fn a(name: &str) -> Pat {
    Pat::atom(name)
}

fn goal(name: &str, args: Vec<Pat>) -> Pat {
    Pat::app(name, args)
}

fn h(m: Pat, s: Pat, t: Pat, q: Pat, args: Pat) -> Pat {
    Pat::app("h", vec![m, s, t, q, args])
}

fn tat(t: Pat) -> Pat {
    Pat::app("tat", vec![t])
}

fn tu(iv: Pat) -> Pat {
    Pat::app("tu", vec![iv])
}

fn ts(iv: Pat) -> Pat {
    Pat::app("ts", vec![iv])
}

fn ta(iv: Pat) -> Pat {
    Pat::app("ta", vec![iv])
}

fn cons(head: Pat, tail: Pat) -> Pat {
    Pat::app(".", vec![head, tail])
}

/// `range_call(G, [rc(..), ..])`: run `G` with numeric range annotations
/// the KB's interval index on the `tat/1` instant can prune candidates
/// with. Semantically transparent — every rule below keeps its real
/// `in_interval`/comparison checks, the wrapper only narrows enumeration.
fn range_call(goal_pat: Pat, rcs: Vec<Pat>) -> Pat {
    let list = rcs
        .into_iter()
        .rev()
        .fold(a("[]"), |tail, head| cons(head, tail));
    Pat::app("range_call", vec![goal_pat, list])
}

/// `rc(X, IV)` where `IV` is (a variable holding) an `iv/4` interval term.
fn rc(x: Pat, iv: Pat) -> Pat {
    Pat::app("rc", vec![x, iv])
}

/// A literal `iv(Lo, Hi, LoEnd, HiEnd)` term.
fn iv(lo: Pat, hi: Pat, lo_end: &str, hi_end: &str) -> Pat {
    Pat::app("iv", vec![lo, hi, a(lo_end), a(hi_end)])
}

/// The simple temporal operator `&t` (§VI.A): time-independent facts are
/// true at every instant. Guarded by `nonvar(T)` for the same reason as
/// the spatial counterpart — answers point queries, never enumerates the
/// continuum.
pub fn temporal_simple() -> MetaModel {
    MetaModel::new("temporal_simple")
        .doc("simple temporal operator: time-independent facts hold at every instant")
        .clause(RawClause::build(
            &h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("T")]),
                h(v("M"), v("S"), a("any"), v("Q"), v("A")),
            ],
        ))
        .build()
}

/// The interval-uniform operator `&u[t1,t2]` (§VI.B):
///
/// * `&u[T1,T2] Q(X) ∧ (T1 ≤ T ≤ T2) ⇒ &T Q(X)` (the paper's closed-case
///   definition; open ends handled by the interval encoding);
/// * a uniform fact is inherited by every subinterval.
pub fn interval_uniform() -> MetaModel {
    MetaModel::new("temporal_uniform")
        .doc("interval-uniform operator: interval facts hold at member instants and subintervals")
        .clause(RawClause::build(
            &h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("T")]),
                h(v("M"), v("S"), tu(v("IV")), v("Q"), v("A")),
                goal("in_interval", vec![v("T"), v("IV")]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), v("S"), tu(v("IV2")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("IV2")]),
                h(v("M"), v("S"), tu(v("IV1")), v("Q"), v("A")),
                goal("\\==", vec![v("IV1"), v("IV2")]),
                goal("subinterval", vec![v("IV2"), v("IV1")]),
            ],
        ))
        .build()
}

/// The interval-sampled operator `&s[t1,t2]` (§VI.A/B): the interval holds
/// a sample if any instant within it does, if any subinterval does, or if
/// an overlapping uniform interval does.
pub fn interval_sampled() -> MetaModel {
    MetaModel::new("temporal_sampled")
        .doc("interval-sampled operator: an interval holds a sample if any instant in it does")
        .clause(RawClause::build(
            &h(v("M"), v("S"), ts(v("IV")), v("Q"), v("A")),
            &[
                range_call(
                    h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
                    vec![rc(v("T"), v("IV"))],
                ),
                goal("in_interval", vec![v("T"), v("IV")]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), v("S"), ts(v("IV1")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("IV1")]),
                h(v("M"), v("S"), ts(v("IV2")), v("Q"), v("A")),
                goal("\\==", vec![v("IV1"), v("IV2")]),
                goal("subinterval", vec![v("IV2"), v("IV1")]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), v("S"), ts(v("IV")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("IV")]),
                h(v("M"), v("S"), tu(v("IV2")), v("Q"), v("A")),
                goal("intervals_overlap", vec![v("IV"), v("IV2")]),
            ],
        ))
        .build()
}

/// The interval-averaged operator `&a[t1,t2]` (§VI.A): the fact's value
/// (first argument, by the same convention as `@a`) is the mean of the
/// instant-qualified values within the interval.
pub fn interval_averaged() -> MetaModel {
    MetaModel::new("temporal_averaged")
        .doc("interval-averaged operator: interval value is the mean of instant values within")
        .clause(RawClause::build(
            &h(
                v("M"),
                v("S"),
                ta(v("IV")),
                v("Q"),
                cons(v("Y0"), v("Rest")),
            ),
            &[goal(
                "aggregate",
                vec![
                    a("avg"),
                    v("Y"),
                    Pat::app(
                        ",",
                        vec![
                            range_call(
                                h(v("M"), v("S"), tat(v("T")), v("Q"), cons(v("Y"), v("Rest"))),
                                vec![rc(v("T"), v("IV"))],
                            ),
                            goal("in_interval", vec![v("T"), v("IV")]),
                        ],
                    ),
                    v("Y0"),
                ],
            )],
        ))
        .build()
}

/// The comprehension principle (§VI.B, after Clifford & Warren): "although
/// some fact may not be uniformly true over some interval of interest, it
/// is often expedient to assume that it is":
/// `&T Q(X) ∧ (t1 ≤ T ≤ t2) ⇒ &u[t1,t2] Q(X)`.
pub fn comprehension_principle() -> MetaModel {
    MetaModel::new("comprehension_principle")
        .doc("comprehension principle: one witness instant makes an interval uniformly true")
        .clause(RawClause::build(
            &h(v("M"), v("S"), tu(v("IV")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("IV")]),
                range_call(
                    h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
                    vec![rc(v("T"), v("IV"))],
                ),
                goal("in_interval", vec![v("T"), v("IV")]),
            ],
        ))
        .build()
}

/// The continuity assumption (§VI.B): when only one value of a semantic
/// domain may qualify an object at a time, "assume that a fact holds true
/// as long as no conflicting fact has been asserted":
///
/// ```text
/// &T1 Q(Y1)(X) ∧ &T2 Q(Y2)(X) ∧ (∀T: T1 < T < T2 → not(&T Q(Y)(X)))
///   ⇒ &u[T1,T2) Q(Y1)(X)
/// ```
pub fn continuity_assumption() -> MetaModel {
    MetaModel::new("continuity_assumption")
        .doc("continuity assumption: a value persists until the next conflicting assertion")
        // The no-conflicting-assertion check makes lookup O(h³) in the
        // history length; nominate h/5 for answer tabling so repeated
        // queries over an unchanged history replay the memoized answers.
        .table("h", 5)
        .clause(RawClause::build(
            &h(
                v("M"),
                v("S"),
                tu(Pat::app(
                    "iv",
                    vec![v("T1"), v("T2"), a("closed"), a("open")],
                )),
                v("Q"),
                cons(v("Y1"), v("Rest")),
            ),
            &[
                h(
                    v("M"),
                    v("S"),
                    tat(v("T1")),
                    v("Q"),
                    cons(v("Y1"), v("Rest")),
                ),
                // T2 must lie after T1 (the `<` below still decides), so
                // the enumeration can skip every earlier instant.
                range_call(
                    h(
                        v("M"),
                        v("S"),
                        tat(v("T2")),
                        v("Q"),
                        cons(v("Y2"), v("Rest")),
                    ),
                    vec![rc(v("T2"), iv(v("T1"), a("inf"), "open", "open"))],
                ),
                goal("<", vec![v("T1"), v("T2")]),
                // No assertion strictly between T1 and T2. `T` and `Y` are
                // local existential variables — unbound at evaluation time —
                // so this must be `absent/1` (existentially-closed
                // negation), not `not/1`, whose floundering check rejects
                // non-ground goals. The between-scan only ever needs the
                // open interval (T1, T2).
                goal(
                    "absent",
                    vec![Pat::app(
                        ",",
                        vec![
                            range_call(
                                h(v("M"), v("S"), tat(v("T")), v("Q"), cons(v("Y"), v("Rest"))),
                                vec![rc(v("T"), iv(v("T1"), v("T2"), "open", "open"))],
                            ),
                            Pat::app(
                                ",",
                                vec![
                                    goal(">", vec![v("T"), v("T1")]),
                                    goal("<", vec![v("T"), v("T2")]),
                                ],
                            ),
                        ],
                    )],
                ),
            ],
        ))
        .build()
}

/// The present moment (§VI.B): `past/1`, `present/1`, `future/1` against
/// the kernel's `now_is/1` fact, and the `&now` expansion
/// `&now Q(X) ∧ present(T) ⇒ &T Q(X)`.
pub fn now_model() -> MetaModel {
    MetaModel::new("now_model")
        .doc("the present moment: past/present/future and the `now` placeholder")
        // Two clauses: the first *binds* an unbound instant to the
        // stored present; the second *tests* a bound instant numerically,
        // so integer-valued queries match the float-valued `now_is` fact.
        .clause(RawClause::build(
            &goal("present", vec![v("T")]),
            &[goal("var", vec![v("T")]), goal("now_is", vec![v("T")])],
        ))
        .clause(RawClause::build(
            &goal("present", vec![v("T")]),
            &[
                goal("nonvar", vec![v("T")]),
                goal("now_is", vec![v("N")]),
                goal("=:=", vec![v("T"), v("N")]),
            ],
        ))
        .clause(RawClause::build(
            &goal("past", vec![v("T")]),
            &[
                goal("now_is", vec![v("N")]),
                goal("<", vec![v("T"), v("N")]),
            ],
        ))
        .clause(RawClause::build(
            &goal("future", vec![v("T")]),
            &[
                goal("now_is", vec![v("N")]),
                goal(">", vec![v("T"), v("N")]),
            ],
        ))
        .clause(RawClause::build(
            &h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
            &[
                h(v("M"), v("S"), a("now"), v("Q"), v("A")),
                goal("present", vec![v("T")]),
            ],
        ))
        .build()
}

/// Cyclic phenomena (the extension §VI.B mentions without detailing): a
/// fact qualified `cyc(Period, IV)` holds at every instant whose phase
/// within the cycle falls in the interval.
pub fn cyclic_phenomena() -> MetaModel {
    MetaModel::new("cyclic_phenomena")
        .doc("cyclic extension of the interval-uniform operator")
        .clause(RawClause::build(
            &h(v("M"), v("S"), tat(v("T")), v("Q"), v("A")),
            &[
                goal("nonvar", vec![v("T")]),
                h(
                    v("M"),
                    v("S"),
                    Pat::app("cyc", vec![v("Period"), v("IV")]),
                    v("Q"),
                    v("A"),
                ),
                goal("in_cycle", vec![v("T"), v("Period"), v("IV")]),
            ],
        ))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_have_expected_sizes() {
        assert_eq!(temporal_simple().clauses().len(), 1);
        assert_eq!(interval_uniform().clauses().len(), 2);
        assert_eq!(interval_sampled().clauses().len(), 3);
        assert_eq!(interval_averaged().clauses().len(), 1);
        assert_eq!(comprehension_principle().clauses().len(), 1);
        assert_eq!(continuity_assumption().clauses().len(), 1);
        assert_eq!(now_model().clauses().len(), 5);
        assert_eq!(cyclic_phenomena().clauses().len(), 1);
    }

    #[test]
    fn continuity_head_is_right_open() {
        let mm = continuity_assumption();
        let head = mm.clauses()[0].head.to_string();
        assert!(head.contains("closed, open"), "head: {head}");
    }
}
