//! # gdp-temporal — temporal qualification of facts (paper §VI)
//!
//! Time as a one-dimensional space: instants, arbitrary intervals with
//! independently open/closed ends, the temporal counterparts of the four
//! spatial operators, the *comprehension principle* and *continuity
//! assumption* (after Clifford & Warren), the `now`/`past`/`present`/
//! `future` machinery, and the cyclic-phenomena extension.
//!
//! ## Example — bridge status over time (continuity assumption, §VI.B)
//!
//! ```
//! use gdp_core::{FactPat, IntervalPat, Pat, Specification, TimeQual};
//! use gdp_temporal::install_default;
//!
//! let mut spec = Specification::new();
//! install_default(&mut spec).unwrap();
//! spec.activate_meta_model("continuity_assumption").unwrap();
//!
//! // &1970 status(open)(b1).   &1980 status(closed)(b1).
//! spec.assert_fact(FactPat::new("status").arg("open").arg("b1")
//!     .time(TimeQual::At(Pat::Int(1970)))).unwrap();
//! spec.assert_fact(FactPat::new("status").arg("closed").arg("b1")
//!     .time(TimeQual::At(Pat::Int(1980)))).unwrap();
//!
//! // The bridge stayed open throughout [1970, 1980).
//! let throughout = FactPat::new("status").arg("open").arg("b1")
//!     .time(TimeQual::IntervalUniform(IntervalPat::right_open(1970, 1980)));
//! assert!(spec.provable(throughout).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod interval;
mod natives;
pub mod ops;

pub use interval::Interval;
pub use natives::install;

/// Convenience: install the temporal natives, register every temporal
/// meta-model, and activate the operator packs most specifications want
/// (`temporal_simple`, `temporal_uniform`, `temporal_sampled`,
/// `temporal_averaged`, `now_model`).
///
/// The comprehension principle, continuity assumption, and cyclic
/// extension are registered but left inactive: they change what counts as
/// true and are exactly the kind of "alternate reasoning rules" the paper
/// says users should opt into per application (§IV.C).
pub fn install_default(spec: &mut gdp_core::Specification) -> gdp_core::SpecResult<()> {
    install(spec);
    spec.register_meta_model(ops::temporal_simple());
    spec.register_meta_model(ops::interval_uniform());
    spec.register_meta_model(ops::interval_sampled());
    spec.register_meta_model(ops::interval_averaged());
    spec.register_meta_model(ops::comprehension_principle());
    spec.register_meta_model(ops::continuity_assumption());
    spec.register_meta_model(ops::now_model());
    spec.register_meta_model(ops::cyclic_phenomena());
    spec.activate_meta_model("temporal_simple")?;
    spec.activate_meta_model("temporal_uniform")?;
    spec.activate_meta_model("temporal_sampled")?;
    spec.activate_meta_model("temporal_averaged")?;
    spec.activate_meta_model("now_model")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_core::{FactPat, IntervalPat, Pat, Specification, TimeQual};
    use gdp_engine::Term;

    fn setup() -> Specification {
        let mut spec = Specification::new();
        install_default(&mut spec).unwrap();
        spec
    }

    fn at(t: i64) -> TimeQual {
        TimeQual::At(Pat::Int(t))
    }

    fn uniform(lo: i64, hi: i64) -> TimeQual {
        TimeQual::IntervalUniform(IntervalPat::closed(lo, hi))
    }

    #[test]
    fn time_independent_facts_hold_at_instants() {
        let mut spec = setup();
        spec.assert_fact(FactPat::new("river").arg("missouri"))
            .unwrap();
        assert!(spec
            .provable(FactPat::new("river").arg("missouri").time(at(1986)))
            .unwrap());
    }

    #[test]
    fn uniform_interval_holds_at_member_instants() {
        let mut spec = setup();
        spec.assert_fact(FactPat::new("open").arg("b1").time(uniform(1970, 1980)))
            .unwrap();
        assert!(spec
            .provable(FactPat::new("open").arg("b1").time(at(1975)))
            .unwrap());
        assert!(!spec
            .provable(FactPat::new("open").arg("b1").time(at(1985)))
            .unwrap());
        // Subinterval inheritance.
        assert!(spec
            .provable(FactPat::new("open").arg("b1").time(uniform(1972, 1978)))
            .unwrap());
        assert!(!spec
            .provable(FactPat::new("open").arg("b1").time(uniform(1972, 1988)))
            .unwrap());
    }

    #[test]
    fn open_ends_respected() {
        let mut spec = setup();
        spec.assert_fact(
            FactPat::new("flooded")
                .arg("plain")
                .time(TimeQual::IntervalUniform(IntervalPat::right_open(10, 20))),
        )
        .unwrap();
        assert!(spec
            .provable(FactPat::new("flooded").arg("plain").time(at(10)))
            .unwrap());
        assert!(!spec
            .provable(FactPat::new("flooded").arg("plain").time(at(20)))
            .unwrap());
    }

    #[test]
    fn sampled_interval_from_instant() {
        let mut spec = setup();
        spec.assert_fact(FactPat::new("sighting").arg("eagle").time(at(1975)))
            .unwrap();
        let sampled = |lo: i64, hi: i64| {
            FactPat::new("sighting")
                .arg("eagle")
                .time(TimeQual::IntervalSampled(IntervalPat::closed(lo, hi)))
        };
        assert!(spec.provable(sampled(1970, 1980)).unwrap());
        assert!(!spec.provable(sampled(1980, 1990)).unwrap());
    }

    #[test]
    fn averaged_interval_value() {
        let mut spec = setup();
        for (t, v) in [(1970, 40.0), (1972, 50.0), (1974, 60.0), (1990, 99.0)] {
            spec.assert_fact(
                FactPat::new("temperature")
                    .arg(Pat::Float(v))
                    .arg("stl")
                    .time(at(t)),
            )
            .unwrap();
        }
        let answers = spec
            .query(
                FactPat::new("temperature")
                    .arg("Z")
                    .arg("stl")
                    .time(TimeQual::IntervalAveraged(IntervalPat::closed(1970, 1980))),
            )
            .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].get("Z").unwrap().as_f64(), Some(50.0));
    }

    #[test]
    fn comprehension_principle_is_opt_in() {
        let mut spec = setup();
        spec.assert_fact(FactPat::new("dry").arg("lakebed").time(at(1975)))
            .unwrap();
        let claim = FactPat::new("dry").arg("lakebed").time(uniform(1970, 1980));
        // Without the principle: one sample does not make it uniform.
        assert!(!spec.provable(claim.clone()).unwrap());
        spec.activate_meta_model("comprehension_principle").unwrap();
        assert!(spec.provable(claim.clone()).unwrap());
        spec.deactivate_meta_model("comprehension_principle")
            .unwrap();
        assert!(!spec.provable(claim).unwrap());
    }

    #[test]
    fn continuity_assumption_persists_values() {
        let mut spec = setup();
        spec.activate_meta_model("continuity_assumption").unwrap();
        spec.assert_fact(FactPat::new("status").arg("open").arg("b1").time(at(1970)))
            .unwrap();
        spec.assert_fact(
            FactPat::new("status")
                .arg("closed")
                .arg("b1")
                .time(at(1980)),
        )
        .unwrap();
        // Uniformly open over [1970, 1980) …
        assert!(spec
            .provable(
                FactPat::new("status")
                    .arg("open")
                    .arg("b1")
                    .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                        1970, 1980
                    )))
            )
            .unwrap());
        // … hence open at 1975 (via the uniform operator) …
        assert!(spec
            .provable(FactPat::new("status").arg("open").arg("b1").time(at(1975)))
            .unwrap());
        // … and NOT closed at 1975.
        assert!(!spec
            .provable(
                FactPat::new("status")
                    .arg("closed")
                    .arg("b1")
                    .time(at(1975))
            )
            .unwrap());
    }

    #[test]
    fn continuity_blocked_by_intermediate_assertion() {
        let mut spec = setup();
        spec.activate_meta_model("continuity_assumption").unwrap();
        for (t, s) in [(1970, "open"), (1975, "closed"), (1980, "open")] {
            spec.assert_fact(FactPat::new("status").arg(s).arg("b1").time(at(t)))
                .unwrap();
        }
        // "open" does not persist across the 1975 "closed" assertion.
        assert!(!spec
            .provable(
                FactPat::new("status")
                    .arg("open")
                    .arg("b1")
                    .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                        1970, 1980
                    )))
            )
            .unwrap());
        assert!(spec
            .provable(
                FactPat::new("status")
                    .arg("open")
                    .arg("b1")
                    .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                        1970, 1975
                    )))
            )
            .unwrap());
    }

    #[test]
    fn past_present_future_example() {
        // The paper's example: the year is 1990; past(1971) is provable,
        // present(1971) and future(1971) are not.
        let mut spec = setup();
        spec.set_now(1990.0);
        let g = |p: &str| Term::pred(p, vec![Term::int(1971)]);
        assert!(spec.prove_goal(g("past")).unwrap());
        assert!(!spec.prove_goal(g("present")).unwrap());
        assert!(!spec.prove_goal(g("future")).unwrap());
        assert!(spec
            .prove_goal(Term::pred("future", vec![Term::int(2001)]))
            .unwrap());
    }

    #[test]
    fn now_qualified_facts_follow_the_present() {
        let mut spec = setup();
        spec.set_now(1990.0);
        spec.assert_fact(FactPat::new("capital").arg("jc").time(TimeQual::Now))
            .unwrap();
        assert!(spec
            .provable(
                FactPat::new("capital")
                    .arg("jc")
                    .time(TimeQual::At(Pat::Float(1990.0)))
            )
            .unwrap());
        assert!(!spec
            .provable(
                FactPat::new("capital")
                    .arg("jc")
                    .time(TimeQual::At(Pat::Float(1985.0)))
            )
            .unwrap());
        // The present moves; the fact follows.
        spec.set_now(1995.0);
        assert!(spec
            .provable(
                FactPat::new("capital")
                    .arg("jc")
                    .time(TimeQual::At(Pat::Float(1995.0)))
            )
            .unwrap());
        assert!(!spec
            .provable(
                FactPat::new("capital")
                    .arg("jc")
                    .time(TimeQual::At(Pat::Float(1990.0)))
            )
            .unwrap());
    }

    #[test]
    fn cyclic_phenomena_repeat() {
        let mut spec = setup();
        spec.activate_meta_model("cyclic_phenomena").unwrap();
        // Tide is high during the first quarter of each 12-hour cycle.
        spec.assert_fact(FactPat::new("high_tide").arg("bay").time(TimeQual::Cyclic {
            period: Pat::Float(12.0),
            interval: IntervalPat::right_open(0.0, 3.0),
        }))
        .unwrap();
        let at_t = |t: f64| {
            FactPat::new("high_tide")
                .arg("bay")
                .time(TimeQual::At(Pat::Float(t)))
        };
        assert!(spec.provable(at_t(1.0)).unwrap());
        assert!(spec.provable(at_t(13.0)).unwrap());
        assert!(spec.provable(at_t(25.5)).unwrap());
        assert!(!spec.provable(at_t(5.0)).unwrap());
        assert!(!spec.provable(at_t(17.0)).unwrap());
    }
}
