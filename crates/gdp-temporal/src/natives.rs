//! Native predicates of the temporal semantic domain.
//!
//! These are the "operations over them" of the time domain (§III.B, §VI):
//! interval membership, subinterval and overlap tests, temporal resolution
//! mapping, and the cyclic-phenomenon test. All are semi-determinate and
//! fail (open-world) rather than erroring on insufficiently instantiated
//! arguments.

use gdp_core::Specification;
use gdp_engine::resolve_deep;

use crate::interval::Interval;

/// Install the temporal natives into `spec`. Idempotent.
pub fn install(spec: &mut Specification) {
    let kb = spec.kb_mut();

    // in_interval(T, IV): ground instant within ground interval.
    kb.register_native("in_interval", 2, |store, args| {
        let t = resolve_deep(store, &args[0]);
        let iv = resolve_deep(store, &args[1]);
        let (Some(t), Some(iv)) = (t.as_f64(), Interval::from_term(&iv)) else {
            return Ok(false);
        };
        Ok(iv.contains(t))
    });

    // subinterval(Inner, Outer).
    kb.register_native("subinterval", 2, |store, args| {
        let inner = resolve_deep(store, &args[0]);
        let outer = resolve_deep(store, &args[1]);
        let (Some(inner), Some(outer)) = (Interval::from_term(&inner), Interval::from_term(&outer))
        else {
            return Ok(false);
        };
        Ok(inner.subset_of(&outer))
    });

    // intervals_overlap(IV1, IV2).
    kb.register_native("intervals_overlap", 2, |store, args| {
        let a = resolve_deep(store, &args[0]);
        let b = resolve_deep(store, &args[1]);
        let (Some(a), Some(b)) = (Interval::from_term(&a), Interval::from_term(&b)) else {
            return Ok(false);
        };
        Ok(a.overlaps(&b))
    });

    // in_cycle(T, Period, IV): (T mod Period) within IV — the cyclic
    // phenomena extension (§VI.B).
    kb.register_native("in_cycle", 3, |store, args| {
        let t = resolve_deep(store, &args[0]);
        let period = resolve_deep(store, &args[1]);
        let iv = resolve_deep(store, &args[2]);
        let (Some(t), Some(period), Some(iv)) =
            (t.as_f64(), period.as_f64(), Interval::from_term(&iv))
        else {
            return Ok(false);
        };
        if period <= 0.0 {
            return Ok(false);
        }
        Ok(iv.contains(t.rem_euclid(period)))
    });

    // t_cell(Cell, T, IV): the width-`Cell` temporal-resolution patch
    // containing T, as an interval [k·Cell, (k+1)·Cell). This is how the
    // resolution-function view of time (§VI.A) unifies with the interval
    // view (§VI.B): a logical-time point *is* its patch interval.
    kb.register_native("t_cell", 3, |store, args| {
        let cell = resolve_deep(store, &args[0]);
        let t = resolve_deep(store, &args[1]);
        let (Some(cell), Some(t)) = (cell.as_f64(), t.as_f64()) else {
            return Ok(false);
        };
        if cell <= 0.0 {
            return Ok(false);
        }
        let k = (t / cell).floor();
        let iv = Interval::right_open(k * cell, (k + 1.0) * cell);
        Ok(store.unify(&iv.to_term(), &args[2]))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdp_engine::Term;

    fn spec() -> Specification {
        let mut s = Specification::new();
        install(&mut s);
        s
    }

    fn iv(lo: f64, hi: f64) -> Term {
        Interval::closed(lo, hi).to_term()
    }

    #[test]
    fn in_interval_checks() {
        let s = spec();
        let g = |t: f64| Term::pred("in_interval", vec![Term::float(t), iv(1.0, 2.0)]);
        assert!(s.prove_goal(g(1.5)).unwrap());
        assert!(!s.prove_goal(g(2.5)).unwrap());
        // Integer instants accepted.
        let g2 = Term::pred("in_interval", vec![Term::int(1), iv(1.0, 2.0)]);
        assert!(s.prove_goal(g2).unwrap());
    }

    #[test]
    fn natives_fail_on_garbage() {
        let s = spec();
        let g = Term::pred(
            "in_interval",
            vec![Term::atom("yesterday"), Term::atom("whenever")],
        );
        assert!(!s.prove_goal(g).unwrap());
        let g = Term::pred("subinterval", vec![Term::var(0), iv(0.0, 1.0)]);
        assert!(!s.prove_goal(g).unwrap());
    }

    #[test]
    fn subinterval_and_overlap() {
        let s = spec();
        let g = Term::pred("subinterval", vec![iv(1.0, 2.0), iv(0.0, 5.0)]);
        assert!(s.prove_goal(g).unwrap());
        let g = Term::pred("intervals_overlap", vec![iv(1.0, 3.0), iv(2.0, 5.0)]);
        assert!(s.prove_goal(g).unwrap());
        let g = Term::pred("intervals_overlap", vec![iv(1.0, 2.0), iv(3.0, 5.0)]);
        assert!(!s.prove_goal(g).unwrap());
    }

    #[test]
    fn cyclic_membership() {
        let s = spec();
        // Day length 24; night hours [22, 24) ∪ [0, 6) — check one side.
        let night = Interval::right_open(0.0, 6.0).to_term();
        let g = |t: f64| {
            Term::pred(
                "in_cycle",
                vec![Term::float(t), Term::float(24.0), night.clone()],
            )
        };
        assert!(s.prove_goal(g(27.0)).unwrap()); // 27 mod 24 = 3 → night
        assert!(!s.prove_goal(g(36.0)).unwrap()); // noon
        assert!(s.prove_goal(g(-23.0)).unwrap()); // rem_euclid: 1 → night
    }

    #[test]
    fn t_cell_builds_patch_interval() {
        let s = spec();
        let g = Term::pred(
            "t_cell",
            vec![Term::float(10.0), Term::float(23.0), Term::var(0)],
        );
        let sols = s.solve_goal(g).unwrap();
        let got = Interval::from_term(sols[0].get(gdp_engine::Var(0)).unwrap()).unwrap();
        assert_eq!(got, Interval::right_open(20.0, 30.0));
    }
}
