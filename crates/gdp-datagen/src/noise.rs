//! Deterministic value noise.
//!
//! The paper's prototype consumed Defense Mapping Agency data we do not
//! have; the substitute terrain is generated from seeded, hash-based value
//! noise with fractal octaves — deterministic for a given seed, so every
//! experiment is exactly reproducible.

/// SplitMix64 finalizer: a high-quality 64-bit mixer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lattice value in `[0, 1)` for integer coordinates under a seed.
fn lattice(seed: u64, x: i64, y: i64) -> f64 {
    let h = mix(seed ^ mix(x as u64 ^ mix(y as u64)));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Seeded value-noise field.
#[derive(Clone, Copy, Debug)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// A noise field for the given seed.
    pub fn new(seed: u64) -> ValueNoise {
        ValueNoise { seed }
    }

    /// Single-octave smooth noise in `[0, 1)`.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let x0 = x.floor();
        let y0 = y.floor();
        let (ix, iy) = (x0 as i64, y0 as i64);
        let (fx, fy) = (smoothstep(x - x0), smoothstep(y - y0));
        let v00 = lattice(self.seed, ix, iy);
        let v10 = lattice(self.seed, ix + 1, iy);
        let v01 = lattice(self.seed, ix, iy + 1);
        let v11 = lattice(self.seed, ix + 1, iy + 1);
        lerp(lerp(v00, v10, fx), lerp(v01, v11, fx), fy)
    }

    /// Fractal (fBm) noise: `octaves` layers, each doubling frequency and
    /// halving amplitude. Normalized to `[0, 1)`.
    pub fn fbm(&self, x: f64, y: f64, octaves: u32) -> f64 {
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut frequency = 1.0;
        let mut norm = 0.0;
        for octave in 0..octaves.max(1) {
            let field = ValueNoise {
                seed: mix(self.seed ^ u64::from(octave)),
            };
            total += amplitude * field.sample(x * frequency, y * frequency);
            norm += amplitude;
            amplitude *= 0.5;
            frequency *= 2.0;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let n1 = ValueNoise::new(42);
        let n2 = ValueNoise::new(42);
        for (x, y) in [(0.1, 0.2), (3.7, 9.1), (-2.5, 4.0)] {
            assert_eq!(n1.sample(x, y), n2.sample(x, y));
            assert_eq!(n1.fbm(x, y, 4), n2.fbm(x, y, 4));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let n1 = ValueNoise::new(1);
        let n2 = ValueNoise::new(2);
        let same = (0..100)
            .filter(|i| {
                let x = f64::from(*i) * 0.37;
                n1.sample(x, x * 1.3) == n2.sample(x, x * 1.3)
            })
            .count();
        assert!(same < 5, "seeds should decorrelate the field");
    }

    #[test]
    fn values_in_unit_interval() {
        let n = ValueNoise::new(7);
        for i in 0..50 {
            for j in 0..50 {
                let v = n.fbm(f64::from(i) * 0.23, f64::from(j) * 0.31, 5);
                assert!((0.0..1.0).contains(&v), "fbm out of range: {v}");
            }
        }
    }

    #[test]
    fn continuity_at_small_scales() {
        // Neighboring samples should not jump wildly (smooth interpolation).
        let n = ValueNoise::new(11);
        let a = n.sample(5.50, 5.50);
        let b = n.sample(5.51, 5.50);
        assert!((a - b).abs() < 0.1);
    }

    #[test]
    fn lattice_values_reasonably_uniform() {
        // Crude uniformity check: mean of many lattice values near 0.5.
        let mut sum = 0.0;
        let count = 10_000;
        for i in 0..count {
            sum += lattice(99, i, -i * 3);
        }
        let mean = sum / count as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
