//! # gdp-datagen — deterministic synthetic geography
//!
//! The paper's prototype was driven by Defense Mapping Agency / RADC data
//! we cannot obtain. This crate generates the closest synthetic
//! equivalents, exercising the same code paths (DESIGN.md documents the
//! substitution): seeded value-noise terrain with lakes, islands, shores,
//! and peaks; road networks with bridges over water; sparse bathymetric
//! surveys with noisy, confidence-rated soundings; and census-style
//! attribute records. Same seed, same world — every experiment is exactly
//! reproducible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod network;
mod noise;
mod survey;
mod terrain;

pub use network::{Bridge, City, Network, NetworkConfig, Road};
pub use noise::ValueNoise;
pub use survey::{Census, CensusRecord, DepthSample, DepthSurvey, SurveyConfig};
pub use terrain::{Cover, Region, Terrain, TerrainConfig};
