//! Synthetic transport networks: cities, roads, and bridges — the
//! substrate for the paper's recurring road/bridge examples (§II.B,
//! §III.A) at realistic scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::terrain::Terrain;

/// A city site on the terrain.
#[derive(Clone, Debug, PartialEq)]
pub struct City {
    /// Sequential id; city objects are named `city<id>`.
    pub id: u32,
    /// Cell coordinates.
    pub cell: (u32, u32),
    /// Synthetic population.
    pub population: u32,
}

/// A road connecting two cities along a rasterized straight segment.
#[derive(Clone, Debug, PartialEq)]
pub struct Road {
    /// Sequential id; road objects are named `road<id>`.
    pub id: u32,
    /// Endpoint city ids.
    pub cities: (u32, u32),
    /// The cells the road passes through, in order.
    pub cells: Vec<(u32, u32)>,
    /// Bridges along the road (indices into `cells` that are water).
    pub bridges: Vec<Bridge>,
}

/// A bridge: a water cell a road crosses.
#[derive(Clone, Debug, PartialEq)]
pub struct Bridge {
    /// Sequential id within the network; named `bridge<id>`.
    pub id: u32,
    /// The water cell being bridged.
    pub cell: (u32, u32),
    /// Whether the bridge is currently open (synthetic status).
    pub open: bool,
}

/// A generated road network.
#[derive(Clone, Debug)]
pub struct Network {
    /// City sites.
    pub cities: Vec<City>,
    /// Roads (a spanning tree over the cities, plus shortcuts).
    pub roads: Vec<Road>,
}

/// Network generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of city sites to place (on land).
    pub n_cities: u32,
    /// Extra non-tree edges added as shortcuts.
    pub extra_edges: u32,
    /// Probability that a bridge is open.
    pub open_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> NetworkConfig {
        NetworkConfig {
            seed: 0xB41D,
            n_cities: 8,
            extra_edges: 3,
            open_probability: 0.8,
        }
    }
}

/// Rasterize a straight segment between cells (Bresenham).
fn line(a: (u32, u32), b: (u32, u32)) -> Vec<(u32, u32)> {
    let (mut x0, mut y0) = (i64::from(a.0), i64::from(a.1));
    let (x1, y1) = (i64::from(b.0), i64::from(b.1));
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let mut out = Vec::new();
    loop {
        out.push((x0 as u32, y0 as u32));
        if x0 == x1 && y0 == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x0 += sx;
        }
        if e2 <= dx {
            err += dx;
            y0 += sy;
        }
    }
    out
}

impl Network {
    /// Generate a network over `terrain`: city sites on land, a minimum
    /// spanning tree of roads (Euclidean weights) plus random shortcuts,
    /// with a bridge wherever a road crosses water.
    pub fn generate(terrain: &Terrain, config: NetworkConfig) -> Network {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Place cities on distinct land cells.
        let mut cities: Vec<City> = Vec::new();
        let mut attempts = 0;
        while cities.len() < config.n_cities as usize && attempts < 10_000 {
            attempts += 1;
            let i = rng.gen_range(0..terrain.width());
            let j = rng.gen_range(0..terrain.height());
            if terrain.is_water(i, j) || cities.iter().any(|c| c.cell == (i, j)) {
                continue;
            }
            cities.push(City {
                id: cities.len() as u32,
                cell: (i, j),
                population: rng.gen_range(10_000..3_000_000),
            });
        }

        // Prim's MST over Euclidean distance.
        let dist = |a: (u32, u32), b: (u32, u32)| {
            let dx = f64::from(a.0) - f64::from(b.0);
            let dy = f64::from(a.1) - f64::from(b.1);
            (dx * dx + dy * dy).sqrt()
        };
        let n = cities.len();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        if n > 1 {
            let mut in_tree = vec![false; n];
            in_tree[0] = true;
            for _ in 1..n {
                let mut best: Option<(usize, usize, f64)> = None;
                for (a, city_a) in cities.iter().enumerate().filter(|(a, _)| in_tree[*a]) {
                    for (b, city_b) in cities.iter().enumerate().filter(|(b, _)| !in_tree[*b]) {
                        let d = dist(city_a.cell, city_b.cell);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((a, b, d));
                        }
                    }
                }
                let (a, b, _) = best.expect("n > 1 guarantees a candidate");
                in_tree[b] = true;
                edges.push((a as u32, b as u32));
            }
            // Shortcuts.
            for _ in 0..config.extra_edges {
                let a = rng.gen_range(0..n as u32);
                let b = rng.gen_range(0..n as u32);
                if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                    edges.push((a, b));
                }
            }
        }

        // Rasterize roads and mark bridges.
        let mut roads = Vec::new();
        let mut bridge_id = 0;
        for (road_id, (a, b)) in edges.into_iter().enumerate() {
            let cells = line(cities[a as usize].cell, cities[b as usize].cell);
            let bridges: Vec<Bridge> = cells
                .iter()
                .filter(|&&(i, j)| terrain.is_water(i, j))
                .map(|&cell| {
                    let bridge = Bridge {
                        id: bridge_id,
                        cell,
                        open: rng.gen_bool(config.open_probability),
                    };
                    bridge_id += 1;
                    bridge
                })
                .collect();
            roads.push(Road {
                id: road_id as u32,
                cities: (a, b),
                cells,
                bridges,
            });
        }
        Network { cities, roads }
    }

    /// Total bridge count.
    pub fn bridge_count(&self) -> usize {
        self.roads.iter().map(|r| r.bridges.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{Terrain, TerrainConfig};

    fn setup() -> (Terrain, Network) {
        let terrain = Terrain::generate(TerrainConfig::default());
        let network = Network::generate(&terrain, NetworkConfig::default());
        (terrain, network)
    }

    #[test]
    fn deterministic() {
        let (t, n1) = setup();
        let n2 = Network::generate(&t, NetworkConfig::default());
        assert_eq!(n1.cities, n2.cities);
        assert_eq!(n1.roads.len(), n2.roads.len());
    }

    #[test]
    fn cities_on_land() {
        let (t, n) = setup();
        assert_eq!(n.cities.len(), 8);
        for c in &n.cities {
            assert!(!t.is_water(c.cell.0, c.cell.1));
        }
    }

    #[test]
    fn roads_form_connected_network() {
        let (_, n) = setup();
        // MST + shortcuts: at least n_cities − 1 roads, all cities reachable.
        assert!(n.roads.len() >= n.cities.len() - 1);
        let mut reached = vec![false; n.cities.len()];
        reached[0] = true;
        let mut changed = true;
        while changed {
            changed = false;
            for r in &n.roads {
                let (a, b) = (r.cities.0 as usize, r.cities.1 as usize);
                if reached[a] != reached[b] {
                    reached[a] = true;
                    reached[b] = true;
                    changed = true;
                }
            }
        }
        assert!(reached.iter().all(|&r| r), "all cities connected by roads");
    }

    #[test]
    fn bridges_are_on_water() {
        let (t, n) = setup();
        for r in &n.roads {
            for b in &r.bridges {
                assert!(t.is_water(b.cell.0, b.cell.1));
            }
        }
    }

    #[test]
    fn road_cells_are_contiguous() {
        let (_, n) = setup();
        for r in &n.roads {
            for w in r.cells.windows(2) {
                let di = (i64::from(w[0].0) - i64::from(w[1].0)).abs();
                let dj = (i64::from(w[0].1) - i64::from(w[1].1)).abs();
                assert!(di <= 1 && dj <= 1, "road jumps cells");
            }
        }
    }

    #[test]
    fn line_rasterization_endpoints() {
        let l = line((0, 0), (3, 2));
        assert_eq!(*l.first().unwrap(), (0, 0));
        assert_eq!(*l.last().unwrap(), (3, 2));
        // Degenerate segment.
        assert_eq!(line((5, 5), (5, 5)), vec![(5, 5)]);
    }
}
