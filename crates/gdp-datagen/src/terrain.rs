//! Synthetic terrain: elevation grid, water bodies, islands, shores, and
//! vegetation zones — the qualitative features the paper's examples need
//! (elevation peaks §V.C, island thresholding and shore lines §V.D,
//! vegetation patches §V.C).

use crate::noise::ValueNoise;

/// Terrain generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TerrainConfig {
    /// RNG seed; same seed, same terrain.
    pub seed: u64,
    /// Grid width in cells.
    pub width: u32,
    /// Grid height in cells.
    pub height: u32,
    /// Noise feature scale: larger = smoother terrain.
    pub feature_scale: f64,
    /// fBm octaves.
    pub octaves: u32,
    /// Elevation below this fraction of the range is water.
    pub water_level: f64,
    /// Maximum elevation in meters (sea level = water_level × this).
    pub max_elevation: f64,
}

impl Default for TerrainConfig {
    fn default() -> TerrainConfig {
        TerrainConfig {
            seed: 0xD1CE,
            width: 64,
            height: 64,
            feature_scale: 16.0,
            octaves: 4,
            water_level: 0.45,
            max_elevation: 1000.0,
        }
    }
}

/// Ground cover classes derived from elevation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cover {
    /// Below water level.
    Water,
    /// Low land near water.
    Marsh,
    /// Mid elevations.
    Forest,
    /// High land.
    Alpine,
}

impl Cover {
    /// Atom name used when loading into a specification.
    pub fn name(self) -> &'static str {
        match self {
            Cover::Water => "water",
            Cover::Marsh => "marsh",
            Cover::Forest => "forest",
            Cover::Alpine => "alpine",
        }
    }
}

/// A connected water or land region found by flood fill.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    /// Sequential region id.
    pub id: u32,
    /// Member cells `(i, j)`.
    pub cells: Vec<(u32, u32)>,
    /// Does the region touch the map border?
    pub touches_border: bool,
}

/// A generated terrain.
#[derive(Clone, Debug)]
pub struct Terrain {
    config: TerrainConfig,
    /// Row-major elevations in meters.
    elevations: Vec<f64>,
}

impl Terrain {
    /// Generate a terrain from the configuration.
    pub fn generate(config: TerrainConfig) -> Terrain {
        assert!(config.width > 0 && config.height > 0, "empty terrain");
        let noise = ValueNoise::new(config.seed);
        let mut elevations = Vec::with_capacity((config.width * config.height) as usize);
        for j in 0..config.height {
            for i in 0..config.width {
                let x = f64::from(i) / config.feature_scale;
                let y = f64::from(j) / config.feature_scale;
                elevations.push(noise.fbm(x, y, config.octaves) * config.max_elevation);
            }
        }
        Terrain { config, elevations }
    }

    /// The generation parameters.
    pub fn config(&self) -> &TerrainConfig {
        &self.config
    }

    /// Grid width in cells.
    pub fn width(&self) -> u32 {
        self.config.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u32 {
        self.config.height
    }

    /// Elevation of cell `(i, j)` in meters.
    pub fn elevation(&self, i: u32, j: u32) -> f64 {
        assert!(i < self.config.width && j < self.config.height);
        self.elevations[(j * self.config.width + i) as usize]
    }

    /// Sea level in meters.
    pub fn sea_level(&self) -> f64 {
        self.config.water_level * self.config.max_elevation
    }

    /// Is cell `(i, j)` under water?
    pub fn is_water(&self, i: u32, j: u32) -> bool {
        self.elevation(i, j) < self.sea_level()
    }

    /// Ground cover class of a cell.
    pub fn cover(&self, i: u32, j: u32) -> Cover {
        let e = self.elevation(i, j) / self.config.max_elevation;
        let w = self.config.water_level;
        if e < w {
            Cover::Water
        } else if e < w + 0.10 {
            Cover::Marsh
        } else if e < w + 0.35 {
            Cover::Forest
        } else {
            Cover::Alpine
        }
    }

    /// Is the land cell a shore (land with at least one 4-neighbor water
    /// cell)?
    pub fn is_shore(&self, i: u32, j: u32) -> bool {
        if self.is_water(i, j) {
            return false;
        }
        self.neighbors4(i, j).any(|(ni, nj)| self.is_water(ni, nj))
    }

    fn neighbors4(&self, i: u32, j: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let (w, h) = (self.config.width, self.config.height);
        [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)]
            .into_iter()
            .filter_map(move |(di, dj)| {
                let ni = i64::from(i) + di;
                let nj = i64::from(j) + dj;
                if ni >= 0 && nj >= 0 && (ni as u32) < w && (nj as u32) < h {
                    Some((ni as u32, nj as u32))
                } else {
                    None
                }
            })
    }

    /// Connected components of cells satisfying `pred` (4-connectivity).
    pub fn regions(&self, pred: impl Fn(u32, u32) -> bool) -> Vec<Region> {
        let w = self.config.width;
        let h = self.config.height;
        let mut seen = vec![false; (w * h) as usize];
        let mut regions = Vec::new();
        for j in 0..h {
            for i in 0..w {
                let idx = (j * w + i) as usize;
                if seen[idx] || !pred(i, j) {
                    continue;
                }
                // Flood fill.
                let mut cells = Vec::new();
                let mut touches_border = false;
                let mut stack = vec![(i, j)];
                seen[idx] = true;
                while let Some((ci, cj)) = stack.pop() {
                    cells.push((ci, cj));
                    if ci == 0 || cj == 0 || ci == w - 1 || cj == h - 1 {
                        touches_border = true;
                    }
                    for (ni, nj) in self.neighbors4(ci, cj) {
                        let nidx = (nj * w + ni) as usize;
                        if !seen[nidx] && pred(ni, nj) {
                            seen[nidx] = true;
                            stack.push((ni, nj));
                        }
                    }
                }
                cells.sort_unstable();
                regions.push(Region {
                    id: regions.len() as u32,
                    cells,
                    touches_border,
                });
            }
        }
        regions
    }

    /// Inland water bodies (water regions not touching the border).
    pub fn lakes(&self) -> Vec<Region> {
        self.regions(|i, j| self.is_water(i, j))
            .into_iter()
            .filter(|r| !r.touches_border)
            .collect()
    }

    /// Islands: land regions entirely surrounded by water (not touching
    /// the border).
    pub fn islands(&self) -> Vec<Region> {
        self.regions(|i, j| !self.is_water(i, j))
            .into_iter()
            .filter(|r| !r.touches_border)
            .collect()
    }

    /// Local elevation maxima (strictly higher than all 4-neighbors) on
    /// land — "elevation peaks" (§V.C).
    pub fn peaks(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for j in 0..self.config.height {
            for i in 0..self.config.width {
                if self.is_water(i, j) {
                    continue;
                }
                let e = self.elevation(i, j);
                if self
                    .neighbors4(i, j)
                    .all(|(ni, nj)| self.elevation(ni, nj) < e)
                {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Trace rivers: from each of the `count` highest peaks, follow the
    /// steepest descent (8-neighborhood) until reaching water, the border,
    /// or a local sink. Returns one cell path per river, source first.
    ///
    /// Rivers give road networks something to bridge and maps a natural
    /// line feature (thinner than any patch — the `@s` operator's use
    /// case, §V.C).
    pub fn rivers(&self, count: usize) -> Vec<Vec<(u32, u32)>> {
        let mut peaks = self.peaks();
        peaks.sort_by(|a, b| {
            self.elevation(b.0, b.1)
                .partial_cmp(&self.elevation(a.0, a.1))
                .expect("elevations are finite")
        });
        peaks
            .into_iter()
            .take(count)
            .map(|source| self.trace_river(source))
            .collect()
    }

    fn trace_river(&self, source: (u32, u32)) -> Vec<(u32, u32)> {
        let mut path = vec![source];
        let (mut ci, mut cj) = source;
        // Bounded by the cell count: each step strictly descends.
        for _ in 0..(self.config.width * self.config.height) {
            if self.is_water(ci, cj) {
                break;
            }
            let current = self.elevation(ci, cj);
            let mut best: Option<((u32, u32), f64)> = None;
            for dj in -1i64..=1 {
                for di in -1i64..=1 {
                    if di == 0 && dj == 0 {
                        continue;
                    }
                    let ni = i64::from(ci) + di;
                    let nj = i64::from(cj) + dj;
                    if ni < 0
                        || nj < 0
                        || ni as u32 >= self.config.width
                        || nj as u32 >= self.config.height
                    {
                        continue;
                    }
                    let (ni, nj) = (ni as u32, nj as u32);
                    let e = self.elevation(ni, nj);
                    if e < current && best.is_none_or(|(_, be)| e < be) {
                        best = Some(((ni, nj), e));
                    }
                }
            }
            match best {
                Some((next, _)) => {
                    path.push(next);
                    (ci, cj) = next;
                }
                None => break, // local sink
            }
        }
        path
    }

    /// Fraction of cells that are water.
    pub fn water_fraction(&self) -> f64 {
        let water = (0..self.config.height)
            .flat_map(|j| (0..self.config.width).map(move |i| (i, j)))
            .filter(|&(i, j)| self.is_water(i, j))
            .count();
        water as f64 / (self.config.width * self.config.height) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terrain() -> Terrain {
        Terrain::generate(TerrainConfig::default())
    }

    #[test]
    fn deterministic() {
        let t1 = terrain();
        let t2 = terrain();
        assert_eq!(t1.elevation(10, 20), t2.elevation(10, 20));
        assert_eq!(t1.water_fraction(), t2.water_fraction());
    }

    #[test]
    fn has_both_land_and_water() {
        let t = terrain();
        let f = t.water_fraction();
        assert!(f > 0.05 && f < 0.95, "water fraction {f}");
    }

    #[test]
    fn shores_border_water() {
        let t = terrain();
        let mut shores = 0;
        for j in 0..t.height() {
            for i in 0..t.width() {
                if t.is_shore(i, j) {
                    shores += 1;
                    assert!(!t.is_water(i, j));
                }
            }
        }
        assert!(shores > 0, "a terrain with water must have shores");
    }

    #[test]
    fn regions_partition_the_grid() {
        let t = terrain();
        let water: usize = t
            .regions(|i, j| t.is_water(i, j))
            .iter()
            .map(|r| r.cells.len())
            .sum();
        let land: usize = t
            .regions(|i, j| !t.is_water(i, j))
            .iter()
            .map(|r| r.cells.len())
            .sum();
        assert_eq!(water + land, (t.width() * t.height()) as usize);
    }

    #[test]
    fn region_cells_are_connected() {
        let t = terrain();
        for region in t.regions(|i, j| t.is_water(i, j)).iter().take(5) {
            // Every cell (beyond the first) has a 4-neighbor in the region.
            let set: std::collections::HashSet<_> = region.cells.iter().copied().collect();
            for &(i, j) in &region.cells {
                if region.cells.len() == 1 {
                    continue;
                }
                let has_neighbor =
                    [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)]
                        .iter()
                        .any(|&(di, dj)| {
                            let ni = i64::from(i) + di;
                            let nj = i64::from(j) + dj;
                            ni >= 0 && nj >= 0 && set.contains(&(ni as u32, nj as u32))
                        });
                assert!(has_neighbor, "isolated cell in region");
            }
        }
    }

    #[test]
    fn peaks_are_local_maxima() {
        let t = terrain();
        let peaks = t.peaks();
        assert!(!peaks.is_empty());
        for (i, j) in peaks.into_iter().take(10) {
            let e = t.elevation(i, j);
            if i > 0 {
                assert!(t.elevation(i - 1, j) < e);
            }
            if j > 0 {
                assert!(t.elevation(i, j - 1) < e);
            }
        }
    }

    #[test]
    fn cover_classes_follow_elevation() {
        let t = terrain();
        for j in 0..t.height() {
            for i in 0..t.width() {
                let c = t.cover(i, j);
                assert_eq!(c == Cover::Water, t.is_water(i, j));
            }
        }
    }

    #[test]
    fn rivers_flow_strictly_downhill() {
        let t = terrain();
        let rivers = t.rivers(3);
        assert_eq!(rivers.len(), 3.min(t.peaks().len()));
        for river in &rivers {
            assert!(!river.is_empty());
            // Strictly descending elevations along the path.
            for w in river.windows(2) {
                let e0 = t.elevation(w[0].0, w[0].1);
                let e1 = t.elevation(w[1].0, w[1].1);
                assert!(e1 < e0, "river must descend: {e0} -> {e1}");
                // 8-connected steps.
                let di = (i64::from(w[0].0) - i64::from(w[1].0)).abs();
                let dj = (i64::from(w[0].1) - i64::from(w[1].1)).abs();
                assert!(di <= 1 && dj <= 1);
            }
            // A river starts at a land peak.
            let (si, sj) = river[0];
            assert!(!t.is_water(si, sj));
        }
    }

    #[test]
    fn rivers_end_at_water_or_sink() {
        let t = terrain();
        for river in t.rivers(5) {
            let &(ei, ej) = river.last().unwrap();
            if !t.is_water(ei, ej) {
                // Must be a genuine local sink: no lower 8-neighbor.
                let e = t.elevation(ei, ej);
                for dj in -1i64..=1 {
                    for di in -1i64..=1 {
                        let ni = i64::from(ei) + di;
                        let nj = i64::from(ej) + dj;
                        if (di, dj) == (0, 0)
                            || ni < 0
                            || nj < 0
                            || ni as u32 >= t.width()
                            || nj as u32 >= t.height()
                        {
                            continue;
                        }
                        assert!(t.elevation(ni as u32, nj as u32) >= e);
                    }
                }
            }
        }
    }

    #[test]
    fn different_seed_changes_terrain() {
        let t1 = terrain();
        let t2 = Terrain::generate(TerrainConfig {
            seed: 999,
            ..TerrainConfig::default()
        });
        let diffs = (0..t1.width())
            .filter(|&i| t1.elevation(i, 5) != t2.elevation(i, 5))
            .count();
        assert!(diffs > t1.width() as usize / 2);
    }
}
