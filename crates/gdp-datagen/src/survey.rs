//! Synthetic surveys and census attributes.
//!
//! * [`DepthSurvey`] — sparse bathymetric samples along track lines with
//!   measurement noise, for the ocean-depth interpolation example
//!   (§VII.B): "a limited set of points is sampled and the value attached
//!   to the points in between is computed using some mathematical
//!   formula".
//! * [`Census`] — per-city attribute records in the DIME spirit (§I):
//!   population, founded year, and an average temperature.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::terrain::Terrain;

/// One bathymetric sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepthSample {
    /// Cell coordinates of the sounding.
    pub cell: (u32, u32),
    /// Measured depth in meters (positive down), including noise.
    pub depth: f64,
    /// Instrument trust for this sounding, in `[0, 1]`.
    pub confidence: f64,
}

/// A sparse depth survey over the water cells of a terrain.
#[derive(Clone, Debug)]
pub struct DepthSurvey {
    /// The soundings, in track order.
    pub samples: Vec<DepthSample>,
}

/// Survey generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct SurveyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Sample every `spacing`-th water cell along scan order.
    pub spacing: u32,
    /// Standard deviation of measurement noise in meters.
    pub noise_sd: f64,
}

impl Default for SurveyConfig {
    fn default() -> SurveyConfig {
        SurveyConfig {
            seed: 0x5EA,
            spacing: 7,
            noise_sd: 2.0,
        }
    }
}

impl DepthSurvey {
    /// Run a survey: true depth is the terrain's negative elevation below
    /// sea level; measurements add Gaussian-ish noise (sum of uniforms)
    /// and carry a confidence that decreases with depth.
    pub fn generate(terrain: &Terrain, config: SurveyConfig) -> DepthSurvey {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sea = terrain.sea_level();
        let mut samples = Vec::new();
        let mut counter = 0;
        for j in 0..terrain.height() {
            for i in 0..terrain.width() {
                if !terrain.is_water(i, j) {
                    continue;
                }
                counter += 1;
                if counter % config.spacing.max(1) != 0 {
                    continue;
                }
                let true_depth = sea - terrain.elevation(i, j);
                // Irwin–Hall approximation of a Gaussian.
                let noise: f64 =
                    (0..12).map(|_| rng.gen_range(-0.5..0.5)).sum::<f64>() * config.noise_sd;
                let depth = (true_depth + noise).max(0.0);
                let confidence = (1.0 - depth / (sea * 2.0)).clamp(0.3, 1.0);
                samples.push(DepthSample {
                    cell: (i, j),
                    depth,
                    confidence,
                });
            }
        }
        DepthSurvey { samples }
    }

    /// The two samples nearest to `cell` (Euclidean over cell indices),
    /// for linear interpolation. `None` with fewer than two samples.
    pub fn nearest_two(&self, cell: (u32, u32)) -> Option<(DepthSample, DepthSample)> {
        if self.samples.len() < 2 {
            return None;
        }
        let d = |s: &DepthSample| {
            let dx = f64::from(s.cell.0) - f64::from(cell.0);
            let dy = f64::from(s.cell.1) - f64::from(cell.1);
            dx * dx + dy * dy
        };
        let mut sorted: Vec<&DepthSample> = self.samples.iter().collect();
        sorted.sort_by(|a, b| d(a).partial_cmp(&d(b)).expect("distances are finite"));
        Some((*sorted[0], *sorted[1]))
    }
}

/// One census record.
#[derive(Clone, Debug, PartialEq)]
pub struct CensusRecord {
    /// City id this record describes.
    pub city_id: u32,
    /// Population count.
    pub population: u32,
    /// Founding year.
    pub founded: i32,
    /// Average annual temperature in °F.
    pub avg_temperature: f64,
}

/// A census over a set of cities.
#[derive(Clone, Debug)]
pub struct Census {
    /// The records, one per city.
    pub records: Vec<CensusRecord>,
}

impl Census {
    /// Generate records for `n_cities` cities.
    pub fn generate(seed: u64, n_cities: u32) -> Census {
        let mut rng = StdRng::seed_from_u64(seed);
        let records = (0..n_cities)
            .map(|city_id| CensusRecord {
                city_id,
                population: rng.gen_range(5_000..4_000_000),
                founded: rng.gen_range(1650..1950),
                avg_temperature: rng.gen_range(35.0..75.0),
            })
            .collect();
        Census { records }
    }

    /// Cities with population above the "large city" cutoff the paper's
    /// §I example uses (one million).
    pub fn large_cities(&self) -> impl Iterator<Item = &CensusRecord> {
        self.records.iter().filter(|r| r.population > 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terrain::{Terrain, TerrainConfig};

    fn survey() -> (Terrain, DepthSurvey) {
        let t = Terrain::generate(TerrainConfig::default());
        let s = DepthSurvey::generate(&t, SurveyConfig::default());
        (t, s)
    }

    #[test]
    fn samples_on_water_and_deterministic() {
        let (t, s) = survey();
        assert!(!s.samples.is_empty());
        for sample in &s.samples {
            assert!(t.is_water(sample.cell.0, sample.cell.1));
            assert!(sample.depth >= 0.0);
            assert!((0.0..=1.0).contains(&sample.confidence));
        }
        let s2 = DepthSurvey::generate(&t, SurveyConfig::default());
        assert_eq!(s.samples, s2.samples);
    }

    #[test]
    fn sampling_is_sparse() {
        let (t, s) = survey();
        let water_cells = (0..t.height())
            .flat_map(|j| (0..t.width()).map(move |i| (i, j)))
            .filter(|&(i, j)| t.is_water(i, j))
            .count();
        assert!(s.samples.len() < water_cells / 3);
    }

    #[test]
    fn noise_stays_bounded() {
        let (t, s) = survey();
        let sea = t.sea_level();
        for sample in &s.samples {
            let true_depth = sea - t.elevation(sample.cell.0, sample.cell.1);
            // 12 uniforms in [-0.5, 0.5) × sd=2 → |noise| ≤ 12 (hard bound).
            assert!((sample.depth - true_depth).abs() <= 12.0 + 1e-9);
        }
    }

    #[test]
    fn nearest_two_orders_by_distance() {
        let (_, s) = survey();
        let probe = s.samples[0].cell;
        let (a, b) = s.nearest_two(probe).unwrap();
        assert_eq!(a.cell, probe); // the sample itself is nearest
        assert_ne!(b.cell, probe);
    }

    #[test]
    fn census_has_large_and_small_cities() {
        let c = Census::generate(7, 50);
        assert_eq!(c.records.len(), 50);
        let large = c.large_cities().count();
        assert!(large > 0 && large < 50, "large cities: {large}");
        // Deterministic.
        let c2 = Census::generate(7, 50);
        assert_eq!(c.records, c2.records);
    }
}
