//! Engine stress tests: classic logic programs with deep backtracking,
//! exercising clause resolution, arithmetic, NAF, and the choice-point
//! machinery well beyond the formalism's typical rule shapes.

use gdp::core::{Pat, RawClause};
use gdp::prelude::*;

fn v(name: &str) -> Pat {
    Pat::var(name)
}

fn g(name: &str, args: Vec<Pat>) -> Pat {
    Pat::app(name, args)
}

fn cons(h: Pat, t: Pat) -> Pat {
    Pat::app(".", vec![h, t])
}

fn nil() -> Pat {
    Pat::Term(Term::nil())
}

fn assert_clauses(kb: &mut KnowledgeBase, clauses: Vec<RawClause>) {
    for c in clauses {
        kb.assert_clause(c.head, c.body);
    }
}

/// select/3 and permutation/2 as ordinary clauses.
fn list_program() -> Vec<RawClause> {
    vec![
        // select(X, [X|T], T).
        RawClause::build(
            &g("select", vec![v("X"), cons(v("X"), v("T")), v("T")]),
            &[],
        ),
        // select(X, [H|T], [H|R]) :- select(X, T, R).
        RawClause::build(
            &g(
                "select",
                vec![v("X"), cons(v("H"), v("T")), cons(v("H"), v("R"))],
            ),
            &[g("select", vec![v("X"), v("T"), v("R")])],
        ),
        // perm([], []).
        RawClause::build(&g("perm", vec![nil(), nil()]), &[]),
        // perm(L, [X|P]) :- select(X, L, R), perm(R, P).
        RawClause::build(
            &g("perm", vec![v("L"), cons(v("X"), v("P"))]),
            &[
                g("select", vec![v("X"), v("L"), v("R")]),
                g("perm", vec![v("R"), v("P")]),
            ],
        ),
    ]
}

fn queens_program() -> Vec<RawClause> {
    let mut clauses = list_program();
    clauses.extend(vec![
        // safe([]).
        RawClause::build(&g("safe", vec![nil()]), &[]),
        // safe([Q|Qs]) :- no_attack(Q, Qs, 1), safe(Qs).
        RawClause::build(
            &g("safe", vec![cons(v("Q"), v("Qs"))]),
            &[
                g("no_attack", vec![v("Q"), v("Qs"), Pat::Int(1)]),
                g("safe", vec![v("Qs")]),
            ],
        ),
        // no_attack(_, [], _).
        RawClause::build(&g("no_attack", vec![v("Q"), nil(), v("D")]), &[]),
        // no_attack(Q, [Q2|Qs], D) :-
        //     Q =\= Q2 + D, Q =\= Q2 - D, D2 is D + 1,
        //     no_attack(Q, Qs, D2).
        RawClause::build(
            &g("no_attack", vec![v("Q"), cons(v("Q2"), v("Qs")), v("D")]),
            &[
                g("=\\=", vec![v("Q"), g("+", vec![v("Q2"), v("D")])]),
                g("=\\=", vec![v("Q"), g("-", vec![v("Q2"), v("D")])]),
                g("is", vec![v("D2"), g("+", vec![v("D"), Pat::Int(1)])]),
                g("no_attack", vec![v("Q"), v("Qs"), v("D2")]),
            ],
        ),
        // queens(L, Qs) :- perm(L, Qs), safe(Qs).
        RawClause::build(
            &g("queens", vec![v("L"), v("Qs")]),
            &[g("perm", vec![v("L"), v("Qs")]), g("safe", vec![v("Qs")])],
        ),
    ]);
    clauses
}

#[test]
fn six_queens_has_exactly_four_solutions() {
    let mut kb = KnowledgeBase::new();
    assert_clauses(&mut kb, queens_program());
    let columns = Term::list((1..=6).map(Term::int).collect());
    let goal = Term::pred("queens", vec![columns, Term::var(0)]);
    let solver = Solver::new(&kb, Budget::new(50_000_000, 256));
    let solutions = solver.solve_all(goal).unwrap();
    assert_eq!(solutions.len(), 4, "6-queens has 4 solutions");
    // Spot-check one known solution.
    let boards: Vec<String> = solutions
        .iter()
        .map(|s| s.get(gdp::engine::Var(0)).unwrap().to_string())
        .collect();
    assert!(
        boards.contains(&"[2, 4, 6, 1, 3, 5]".to_string()),
        "{boards:?}"
    );
}

#[test]
fn permutations_enumerate_completely() {
    let mut kb = KnowledgeBase::new();
    assert_clauses(&mut kb, list_program());
    let items = Term::list((1..=5).map(Term::int).collect());
    let goal = Term::pred("perm", vec![items, Term::var(0)]);
    let solver = Solver::new(&kb, Budget::default());
    assert_eq!(solver.count(goal).unwrap(), 120); // 5!
}

#[test]
fn map_three_coloring() {
    // Color a small adjacency map with 3 colors via generate-and-test.
    let mut kb = KnowledgeBase::new();
    for color in ["red", "green", "blue"] {
        kb.assert_fact(Term::pred("color", vec![Term::atom(color)]));
    }
    // neighbors: a-b, a-c, b-c, b-d, c-d  (K4 minus a-d: 3-colorable)
    let pairs = [("A", "B"), ("A", "C"), ("B", "C"), ("B", "D"), ("C", "D")];
    let mut body = vec![
        g("color", vec![v("A")]),
        g("color", vec![v("B")]),
        g("color", vec![v("C")]),
        g("color", vec![v("D")]),
    ];
    for (x, y) in pairs {
        body.push(g("\\==", vec![v(x), v(y)]));
    }
    let head = g("coloring", vec![v("A"), v("B"), v("C"), v("D")]);
    let clause = RawClause::build(&head, &body);
    kb.assert_clause(clause.head, clause.body);
    let goal = Term::pred(
        "coloring",
        vec![Term::var(0), Term::var(1), Term::var(2), Term::var(3)],
    );
    let solver = Solver::new(&kb, Budget::default());
    let solutions = solver.solve_all(goal).unwrap();
    // 3 choices for A; B,C must differ from A and each other (2×1); D
    // differs from B and C → exactly 1 choice (A's color) … total 3·2·1·1.
    assert_eq!(solutions.len(), 6);
}

#[test]
fn ackermann_style_recursion_respects_budget() {
    // peano addition and a deliberately explosive double recursion.
    let mut kb = KnowledgeBase::new();
    let s = |p: Pat| Pat::app("s", vec![p]);
    let add0 = RawClause::build(&g("add", vec![Pat::atom("z"), v("Y"), v("Y")]), &[]);
    let add1 = RawClause::build(
        &g("add", vec![s(v("X")), v("Y"), s(v("Z"))]),
        &[g("add", vec![v("X"), v("Y"), v("Z")])],
    );
    kb.assert_clause(add0.head, add0.body);
    kb.assert_clause(add1.head, add1.body);
    // 3 + 2 = 5 in peano terms.
    fn peano(n: u32) -> Term {
        (0..n).fold(Term::atom("z"), |acc, _| Term::pred("s", vec![acc]))
    }
    let solver = Solver::new(&kb, Budget::default());
    let goal = Term::pred("add", vec![peano(3), peano(2), Term::var(0)]);
    let sols = solver.solve_all(goal).unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols[0].get(gdp::engine::Var(0)).unwrap(), &peano(5));
    // Reverse mode: which X + Y = 5? Enumerates all six splits.
    let goal = Term::pred("add", vec![Term::var(0), Term::var(1), peano(5)]);
    assert_eq!(solver.count(goal).unwrap(), 6);
}

#[test]
fn deep_conjunction_chains_stay_iterative() {
    // 50_000-goal conjunction: would overflow a recursive interpreter.
    // (Run on a large stack only because Rust's *Drop* of the nested `,`
    // term is itself recursive — the solver never recurses on it.)
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let mut kb = KnowledgeBase::new();
            kb.assert_fact(Term::atom("tick"));
            let goals = vec![Term::atom("tick"); 50_000];
            let goal = Term::conj(goals);
            let solver = Solver::new(&kb, Budget::new(1_000_000, 64));
            assert!(solver.prove(goal).unwrap());
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn wide_backtracking_through_disjunctions() {
    // (a1;a2;…;a20) × (b1;…;b20) joined on a shared variable with only
    // the last pair matching: forces full cross-product backtracking.
    let mut kb = KnowledgeBase::new();
    for i in 0..20 {
        kb.assert_fact(Term::pred("left", vec![Term::int(i)]));
        kb.assert_fact(Term::pred("right", vec![Term::int(i + 19)]));
    }
    let goal = Term::conj(vec![
        Term::pred("left", vec![Term::var(0)]),
        Term::pred("right", vec![Term::var(0)]),
    ]);
    let solver = Solver::new(&kb, Budget::default());
    let sols = solver.solve_all(goal).unwrap();
    assert_eq!(sols.len(), 1);
    assert_eq!(sols[0].get(gdp::engine::Var(0)).unwrap(), &Term::int(19));
}
