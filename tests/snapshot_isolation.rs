//! Snapshot-isolation equivalence: a reader pinned at commit K, running
//! concurrently with a writer streaming further commits, must produce
//! *byte-identical* output to a sequential run stopped at K.
//!
//! The suite drives [`SpecStore`] directly (no sockets): a writer thread
//! commits W transactions; after each commit the main thread pins a
//! snapshot and hands it to a reader thread that audits and queries it
//! repeatedly while the writer keeps going. Baselines come from a
//! separate, fully sequential pass over the same transaction stream.
//!
//! Honors `GDP_TABLING` (the suite-wide ablation hook): the CI leg runs
//! this file with tabling off and on, and the equivalence must hold in
//! both worlds — with tabling the pinned reader additionally reports
//! `snapshot_hits` instead of plain table hits.

use gdp::core::{SpecStore, Specification};
use gdp::engine::Delta;

const COMMITS: usize = 6;

/// The shared base image: bridges with an openness constraint.
fn base_spec() -> Specification {
    let mut spec = Specification::new();
    gdp::lang::load(
        &mut spec,
        r#"
            bridge(b0). open(b0).
            constraint unopened_bridge(X) :- bridge(X), not(open(X)).
        "#,
    )
    .expect("base loads");
    spec
}

/// The K-th transaction: adds bridge bK, and opens it only when K is
/// even — odd commits therefore add one audit violation each.
fn txn_source(k: usize) -> String {
    if k % 2 == 0 {
        format!("bridge(b{k}). open(b{k}).")
    } else {
        format!("bridge(b{k}).")
    }
}

/// Everything a session can observe, rendered to one comparable string:
/// query answers, audit violations, and the per-model breakdown.
fn observe(spec: &Specification) -> String {
    let mut out = String::new();
    let answers = spec
        .query(gdp::core::FactPat::new("bridge").arg("X"))
        .expect("query");
    for a in &answers {
        out.push_str(&format!("{:?}\n", a.bindings()));
    }
    let report = spec.audit_world_views(2).expect("audit");
    for v in &report.violations {
        out.push_str(&format!("{v}\n"));
    }
    for (m, n) in &report.per_model {
        out.push_str(&format!("{m}: {n}\n"));
    }
    out
}

/// Sequential baselines: `baseline[k]` is the observation after commits
/// 1..=k, computed with no concurrency anywhere.
fn sequential_baselines() -> Vec<String> {
    let mut spec = base_spec();
    let mut out = vec![observe(&spec)];
    for k in 1..=COMMITS {
        gdp::lang::load(&mut spec, &txn_source(k)).expect("txn loads");
        out.push(observe(&spec));
    }
    out
}

#[test]
fn pinned_readers_match_sequential_run() {
    let baselines = sequential_baselines();
    let store = SpecStore::new(base_spec());

    // Reader 0 pins the base image before any commit lands.
    let mut readers = Vec::new();
    let spawn_reader = |snapshot: Specification, expected: String, k: usize| {
        std::thread::spawn(move || {
            for round in 0..4 {
                assert_eq!(
                    observe(&snapshot),
                    expected,
                    "reader pinned at {k} diverged from the sequential run (round {round})"
                );
            }
        })
    };
    readers.push(spawn_reader(store.snapshot().1, baselines[0].clone(), 0));

    // The writer commits on the main thread; after each commit a new
    // pinned reader starts, so every earlier reader runs concurrently
    // with every later commit.
    for (k, baseline) in baselines.iter().enumerate().skip(1) {
        let (committed, _) = store
            .commit(|spec| {
                gdp::lang::load(spec, &txn_source(k))
                    .map_err(|e| gdp::core::SpecError::Transaction(e.to_string()))
            })
            .expect("commit");
        assert_eq!(committed.seq, k as u64);
        readers.push(spawn_reader(store.snapshot().1, baseline.clone(), k));
    }
    for handle in readers {
        handle.join().expect("reader");
    }

    // And the time-travel path: reconstructed snapshots (inverse-delta
    // chains, not head pins) observe the very same baselines.
    for (k, baseline) in baselines.iter().enumerate() {
        let snapshot = store.snapshot_at(k as u64).expect("snapshot_at");
        assert_eq!(
            &observe(&snapshot),
            baseline,
            "snapshot_at({k}) diverged from the sequential run"
        );
        assert!(snapshot.kb().check_index_integrity().is_ok());
    }
}

#[test]
fn incremental_audit_on_snapshot_uses_carried_cache() {
    let mut spec = base_spec();
    spec.set_incremental(true);
    let store = SpecStore::new(spec);
    // Seed the audit cache on the live store, then commit one violation.
    let full = store.read(|s| s.audit_incremental(&Delta::new(), 2).expect("seed"));
    assert!(full.violations.is_empty());
    let (committed, _) = store
        .commit(|spec| {
            gdp::lang::load(spec, "bridge(b_bad).")
                .map_err(|e| gdp::core::SpecError::Transaction(e.to_string()))
        })
        .expect("commit");
    store.read(|s| {
        let _ = s.audit_incremental(&committed.delta, 2).expect("refresh");
    });

    // A head snapshot carries the refreshed cache: an incremental audit
    // with an empty pending delta reuses it and still reports the
    // violation, identically to a full audit of the same snapshot.
    let (_, snapshot) = store.snapshot();
    let via_cache = snapshot
        .audit_incremental(&Delta::new(), 2)
        .expect("cached");
    let via_full = snapshot.audit_world_views(2).expect("full");
    assert_eq!(via_cache.violations, via_full.violations);
    assert_eq!(via_cache.per_model, via_full.per_model);
    assert!(via_cache
        .violations
        .iter()
        .any(|v| v.to_string().contains("unopened_bridge")));
}

#[test]
fn snapshot_table_hits_are_observable() {
    let mut spec = base_spec();
    spec.enable_tabling(true);
    spec.set_table_all(true);
    // Populate the answer table on the live specification.
    let pat = || gdp::core::FactPat::new("bridge").arg("X");
    let live_answers = spec.query(pat()).expect("populate");
    let _ = spec.query(pat()).expect("warm");

    let snapshot = spec.snapshot();
    let snap_answers = snapshot.query(pat()).expect("snapshot query");
    assert_eq!(snap_answers, live_answers);
    let stats = snapshot.solver_stats();
    assert!(
        stats.snapshot_hits > 0,
        "a warm snapshot table must surface S-HITs, got {stats:?}"
    );
    assert!(stats.snapshot_hits <= stats.table_hits);

    // The live specification keeps reporting plain table hits.
    let _ = spec.query(pat()).expect("live again");
    let live_stats = spec.solver_stats();
    assert_eq!(
        live_stats.snapshot_hits, 0,
        "live hits are not snapshot hits"
    );
}
