//! Observation must never change observation-free behavior: a solver
//! running with a trace/profile sink attached returns exactly the answers
//! (same solutions, same order, same errors) the `NullSink` fast path
//! returns — tabling off and on, sequentially and across the parallel
//! batch layer — and the profiler's step ledger reconciles exactly with
//! the solver's own step counter.

use proptest::prelude::*;

use gdp::engine::{Budget, KnowledgeBase, ObserverSink, ParallelSolver, Solver, Term};

const ATOMS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Same rule shapes as the tabling/parallel equivalence suites:
/// conjunction, disjunction, recursion, and (ground / existential)
/// negation — the constructs whose port emission differs most.
fn install_rules(kb: &mut KnowledgeBase) {
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    kb.assert_clause(
        Term::pred("r", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::pred("q", vec![x.clone()]),
        ),
    );
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z.clone(), y.clone()]),
            ),
        ),
    );
    kb.assert_clause(
        Term::pred("u", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::not(Term::pred("q", vec![x])),
        ),
    );
}

fn build_kb(unary: &[(u8, u8)], edges: &[(u8, u8)], tabled: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for &(p, a) in unary {
        let name = if p == 0 { "p" } else { "q" };
        kb.assert_fact(Term::pred(
            name,
            vec![Term::atom(ATOMS[a as usize % ATOMS.len()])],
        ));
    }
    for &(a, b) in edges {
        let (a, b) = (a as usize % ATOMS.len(), b as usize % ATOMS.len());
        // Acyclic edges: `t/2` diverges on cycles under plain SLD.
        if a >= b {
            continue;
        }
        kb.assert_fact(Term::pred(
            "e",
            vec![Term::atom(ATOMS[a]), Term::atom(ATOMS[b])],
        ));
    }
    install_rules(&mut kb);
    if tabled {
        kb.set_tabling(true);
        kb.set_table_all(true);
    }
    kb
}

fn arb_goal() -> impl Strategy<Value = Term> {
    let atom = (0usize..ATOMS.len())
        .prop_map(|i| Term::atom(ATOMS[i]))
        .boxed();
    prop_oneof![
        Just(Term::pred("r", vec![Term::var(0)])),
        Just(Term::pred("u", vec![Term::var(0)])),
        atom.clone()
            .prop_map(|a| Term::pred("t", vec![a, Term::var(0)])),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| Term::not(Term::pred("t", vec![a, b]))),
        atom.prop_map(|a| Term::absent(Term::pred("t", vec![a, Term::var(0)]))),
    ]
}

/// Render one goal's solution list (order included) or its error.
fn fingerprint(result: &Result<Vec<gdp::engine::Solution>, gdp::engine::EngineError>) -> String {
    match result {
        Ok(sols) => sols
            .iter()
            .map(|sol| {
                sol.bindings()
                    .iter()
                    .map(|(v, t)| format!("{v:?}={t}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join(";"),
        Err(e) => format!("error: {e:?}"),
    }
}

proptest! {
    /// For random fact sets and goals, the fully-observed solver (profiler
    /// + bounded trace ring) returns byte-identical answers to the
    /// `NullSink` fast path, tabling off and on — and its profiler
    /// accounts for exactly the steps the solver reports.
    #[test]
    fn traced_solver_equals_untraced(
        unary in prop::collection::vec((0u8..2, 0u8..5), 0..12),
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        goals in prop::collection::vec(arb_goal(), 1..6),
    ) {
        for tabled in [false, true] {
            for goal in &goals {
                // Separate knowledge bases: solvers over one base share its
                // answer table, so a second run would replay the first
                // run's tabled answers and legitimately take fewer steps.
                let cold = build_kb(&unary, &edges, tabled);
                let plain = Solver::new(&cold, Budget::default());
                let expected = fingerprint(&plain.solve_all(goal.clone()));
                let kb = build_kb(&unary, &edges, tabled);
                let traced = Solver::with_sink(
                    &kb,
                    Budget::default(),
                    ObserverSink::new(true, Some(64)),
                );
                let got = fingerprint(&traced.solve_all(goal.clone()));
                prop_assert_eq!(&got, &expected, "answer divergence, tabled={}", tabled);
                prop_assert_eq!(
                    plain.stats().steps,
                    traced.stats().steps,
                    "step-count divergence, tabled={}", tabled
                );
                let steps = traced.stats().steps;
                let prof = traced
                    .into_sink()
                    .into_parts()
                    .0
                    .expect("profiling was requested");
                prop_assert_eq!(prof.total_steps(), steps, "unattributed steps");
            }
        }
    }

    /// The parallel batch layer with per-worker profiling merges answers
    /// and step ledgers without perturbing either: batch answers match an
    /// unprofiled batch, and the merged profile covers the merged stats.
    #[test]
    fn profiled_parallel_batch_equals_plain(
        unary in prop::collection::vec((0u8..2, 0u8..5), 0..10),
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..8),
        goals in prop::collection::vec(arb_goal(), 1..5),
    ) {
        for workers in [1usize, 4] {
            let kb = build_kb(&unary, &edges, false);
            let plain = ParallelSolver::new(&kb, workers);
            let expected: Vec<String> =
                plain.solve_batch(&goals).iter().map(fingerprint).collect();
            let mut profiled = ParallelSolver::new(&kb, workers);
            profiled.enable_profile();
            let got: Vec<String> =
                profiled.solve_batch(&goals).iter().map(fingerprint).collect();
            prop_assert_eq!(&got, &expected, "divergence at {} workers", workers);
            let prof = profiled.profile().expect("profiling was enabled");
            prop_assert_eq!(prof.total_steps(), profiled.stats().steps);
        }
    }
}

/// On every corpus specification, a fully-observed consistency check
/// (trace on, profile on) reports the identical violation list the
/// unobserved check reports, and the profiler reconciles with the
/// recorded solver stats.
#[test]
fn corpus_consistency_is_observation_invariant() {
    let dir = ["specs", "../../specs"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_dir())
        .expect("specs/ directory not found");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read specs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("gdp") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("read spec");
        let load = |observed: bool| {
            let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
            gdp::lang::Loader::with_spatial(&mut spec, &reg)
                .load_str(&source)
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
            if observed {
                spec.set_trace(true);
                spec.set_profile(true);
            }
            spec
        };
        let plain = load(false);
        let expected: Vec<String> = plain
            .check_consistency()
            .expect("unobserved audit")
            .iter()
            .map(|v| v.to_string())
            .collect();
        let observed = load(true);
        observed.reset_profile();
        let got: Vec<String> = observed
            .check_consistency()
            .expect("observed audit")
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(
            got,
            expected,
            "{}: observation changed the audit",
            path.display()
        );
        assert_eq!(
            plain.solver_stats().steps,
            observed.solver_stats().steps,
            "{}: observation changed the step count",
            path.display()
        );
        let prof = observed.profile();
        assert_eq!(
            prof.total_steps(),
            observed.solver_stats().steps,
            "{}: unattributed steps",
            path.display()
        );
        assert!(
            observed.last_trace().is_some(),
            "{}: tracing left no ring",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 4, "expected the full corpus, audited {checked}");
}

/// Acceptance criterion: profiling the Missouri specification's
/// consistency audit yields a per-predicate table whose step totals sum
/// to exactly `SolverStats.steps`, with the hot predicates ranked first.
#[test]
fn missouri_audit_profile_reconciles_with_stats() {
    let path = ["specs/missouri.gdp", "../../specs/missouri.gdp"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_file())
        .expect("specs/missouri.gdp not found");
    let source = std::fs::read_to_string(&path).expect("read missouri.gdp");
    let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
    gdp::lang::Loader::with_spatial(&mut spec, &reg)
        .load_str(&source)
        .expect("load missouri.gdp");
    spec.set_profile(true);
    spec.reset_profile();
    spec.check_consistency().expect("consistency audit");
    let stats = spec.solver_stats();
    let prof = spec.profile();
    assert!(stats.steps > 0);
    assert_eq!(prof.total_steps(), stats.steps);
    let rows = prof.rows();
    assert!(!rows.is_empty());
    let row_sum: u64 = rows.iter().map(|(_, p)| p.steps).sum();
    assert_eq!(
        row_sum, stats.steps,
        "per-predicate steps must sum to the total"
    );
    // Hot-first ordering: the report is sorted by steps, descending.
    assert!(rows.windows(2).all(|w| w[0].1.steps >= w[1].1.steps));
    // And the rendered table carries the same total.
    assert!(prof.render().contains(&stats.steps.to_string()));
}
