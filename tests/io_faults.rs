//! Disk-fault sweep: every I/O fault point must leave a recoverable log.
//!
//! A writer commits a deterministic stream of facts through a durable
//! [`SpecStore`] with a [`ChaosFile`] fault armed under every WAL and
//! checkpoint write — a short write, an fsync failure, or a hard crash
//! at byte (or sync) K. The first I/O error is treated as a process
//! crash: the store is dropped on the spot and recovery runs over the
//! surviving files with no faults, exactly as a restarted server would.
//!
//! The property, for *every* fault kind × trigger point:
//!
//! * recovery never panics and never refuses (these are torn-tail
//!   crashes, not operator-deleted segments);
//! * the recovered head is exactly the acknowledged prefix — or, for
//!   fsync faults only, one past it (the record's bytes all reached the
//!   file but the sync error meant the commit was never acknowledged;
//!   surfacing an unacknowledged-but-complete transaction is correct,
//!   losing an acknowledged one is not);
//! * the recovered content matches that boundary fact-for-fact; and
//! * the restarted store serves: one more commit goes through.
//!
//! The sweep runs with a small checkpoint interval so the fault points
//! also land inside checkpoint images and WAL rotations, not just
//! appends. Setting `GDP_CHAOS=io:short:K` / `io:fsync:K` / `io:crash:K`
//! (or `io:SEED`) adds that point to the sweep, which is how the CI
//! chaos leg scatters extra coverage.

use std::path::{Path, PathBuf};

use gdp::core::{DurabilityOptions, SpecStore, Specification};
use gdp::engine::{IoFaultConfig, IoFaultKind};
use gdp::prelude::FactPat;

/// How many commits the workload attempts per fault point.
const COMMITS: u64 = 24;
/// Auto-checkpoint cadence: small, so each run crosses several
/// checkpoint+rotation boundaries.
const INTERVAL: u64 = 5;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gdp-iofault-{tag}-{}.wal", std::process::id()));
    p
}

fn remove_family(path: &Path) {
    for suffix in ["", ".prev", ".ckpt", ".ckpt.prev", ".ckpt.tmp"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
}

/// The deterministic base image. Recovery must rebuild it identically —
/// that is the documented "base image + log" contract.
fn base() -> Specification {
    let mut spec = Specification::new();
    spec.assert_fact(FactPat::new("seed").arg("s0")).unwrap();
    spec
}

fn fact_name(i: u64) -> String {
    format!("x{i}")
}

/// Run the workload under `fault`, crash at the first I/O error, recover
/// clean, and check the committed-prefix property. Returns the
/// acknowledged count and recovered head (for the summary assertion).
fn crash_and_recover(tag: &str, fault: IoFaultConfig) -> (u64, u64) {
    let path = temp_path(tag);
    remove_family(&path);
    let opts = DurabilityOptions {
        checkpoint_interval: Some(INTERVAL),
        io_faults: Some(fault),
    };

    // Phase 1: commit until the fault bites (or the workload ends). A
    // failed `create_durable` (fault inside the header write) means
    // nothing was ever acknowledged — still a valid crash point.
    let mut acked = 0u64;
    if let Ok(store) = SpecStore::create_durable(base(), &path, opts) {
        for i in 1..=COMMITS {
            let name = fact_name(i);
            match store.commit(|spec| spec.assert_fact(FactPat::new("f").arg(name.as_str()))) {
                Ok((committed, ())) => {
                    assert_eq!(committed.seq, i, "{tag}: seq drifted");
                    acked = i;
                }
                // First I/O error = the crash. Drop the store (the
                // faulted handle is dead anyway) and go recover.
                Err(_) => break,
            }
        }
    }

    // Phase 2: a "restarted process" recovers with no faults armed.
    let (store, head) =
        SpecStore::recover_durable(base(), &path, DurabilityOptions::no_checkpoints())
            .unwrap_or_else(|e| panic!("{tag}: recovery refused after a torn crash: {e}"));

    // Head is the acked prefix — or acked+1 for a complete-but-unsynced
    // record under an fsync fault (see the module docs).
    match fault.kind {
        IoFaultKind::FsyncFail => assert!(
            head == acked || head == acked + 1,
            "{tag}: recovered head {head}, acknowledged {acked}"
        ),
        _ => assert_eq!(head, acked, "{tag}: recovered head vs acknowledged"),
    }

    // Content matches the recovered boundary exactly: facts x1..=head
    // present, everything later absent.
    store.read(|spec| {
        for i in 1..=COMMITS {
            let present = spec
                .provable(FactPat::new("f").arg(fact_name(i).as_str()))
                .unwrap();
            assert_eq!(
                present,
                i <= head,
                "{tag}: fact x{i} vs recovered head {head}"
            );
        }
    });

    // The restarted store serves: one more commit is acknowledged and
    // lands at head + 1.
    let (committed, ()) = store
        .commit(|spec| spec.assert_fact(FactPat::new("f").arg("post_recovery")))
        .unwrap_or_else(|e| panic!("{tag}: restarted store refused a commit: {e}"));
    assert_eq!(committed.seq, head + 1, "{tag}: post-recovery seq");

    drop(store);
    remove_family(&path);
    (acked, head)
}

/// Byte-trigger sweep for short writes and crashes. The range covers the
/// WAL header (28 bytes), the first few records, and — with the small
/// interval — offsets that land inside checkpoint images and the
/// post-rotation segment. Strides keep the runtime proportionate while
/// still crossing every structural boundary.
fn byte_points() -> Vec<u64> {
    let mut points: Vec<u64> = (1..=64).collect();
    points.extend((66..=400).step_by(7));
    points.extend((401..=2000).step_by(97));
    points
}

#[test]
fn short_write_sweep_recovers_committed_prefix() {
    let mut interrupted = 0u64;
    for at in byte_points() {
        let fault = IoFaultConfig {
            kind: IoFaultKind::ShortWrite,
            at,
        };
        let (acked, _) = crash_and_recover(&format!("short-{at}"), fault);
        if acked < COMMITS {
            interrupted += 1;
        }
    }
    // The sweep must actually have exercised mid-stream crashes, not
    // only fault points beyond the file sizes.
    assert!(interrupted > 0, "no short-write point interrupted the run");
}

#[test]
fn crash_sweep_recovers_committed_prefix() {
    let mut interrupted = 0u64;
    for at in byte_points() {
        let fault = IoFaultConfig {
            kind: IoFaultKind::Crash,
            at,
        };
        let (acked, _) = crash_and_recover(&format!("crash-{at}"), fault);
        if acked < COMMITS {
            interrupted += 1;
        }
    }
    assert!(interrupted > 0, "no crash point interrupted the run");
}

#[test]
fn fsync_failure_sweep_recovers_committed_prefix() {
    // Sync triggers are call indexes, not bytes: one per WAL create,
    // one per append, a few per checkpoint. The workload performs a few
    // dozen, so a modest range covers every boundary.
    let mut interrupted = 0u64;
    for at in 1..=40 {
        let fault = IoFaultConfig {
            kind: IoFaultKind::FsyncFail,
            at,
        };
        let (acked, _) = crash_and_recover(&format!("fsync-{at}"), fault);
        if acked < COMMITS {
            interrupted += 1;
        }
    }
    assert!(interrupted > 0, "no fsync point interrupted the run");
}

/// The `GDP_CHAOS=io:…` hook: CI legs re-run the suite with extra fault
/// points scattered by seed. Unset (or a non-`io:` value), this is a
/// no-op pass.
#[test]
fn env_driven_fault_point_recovers() {
    if let Some(fault) = IoFaultConfig::from_env() {
        crash_and_recover("env", fault);
    }
}
