//! E1–E16: every worked example of the paper, executable.
//!
//! This is the paper's de-facto evaluation (it has no measurement tables);
//! each test is indexed in DESIGN.md §5 and regenerated into
//! EXPERIMENTS.md by `gdp-bench`'s `experiments` binary.

use gdp::fuzzy::ac::{ac_of, derive_accuracies, AcOptions};
use gdp::fuzzy::{threshold_model, unified_fuzzy, unified_threshold_model, UnifyPolicy};
use gdp::lang::{load, query};
use gdp::prelude::*;

fn pt(x: f64, y: f64) -> Pat {
    Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
}

fn uniform(res: &str, x: f64, y: f64) -> SpaceQual {
    SpaceQual::AreaUniform {
        res: Pat::atom(res),
        at: pt(x, y),
    }
}

/// E1 (§II.B): basic facts `road(s1)`, `road(s2)`, `road_intersection(s1, s2)`.
#[test]
fn e01_basic_facts() {
    let mut spec = Specification::new();
    load(&mut spec, "road(s1). road(s2). road_intersection(s1, s2).").unwrap();
    assert!(spec.provable(FactPat::new("road").arg("s1")).unwrap());
    assert!(spec
        .provable(FactPat::new("road_intersection").arg("s1").arg("s2"))
        .unwrap());
    // Open world: the unstated fact is undefined, not false (§III.A).
    assert!(!spec.provable(FactPat::new("road").arg("s3")).unwrap());
    assert_eq!(query(&spec, "road(X)").unwrap().len(), 2);
}

/// E2 (§III.A): the three virtual-fact examples — open_road (bounded ∀),
/// closed (negation as failure), known_status (disjunction).
#[test]
fn e02_virtual_facts() {
    let mut spec = Specification::new();
    load(
        &mut spec,
        r#"
        road(s1). road(s2).
        bridge(b1, s1). bridge(b2, s1). bridge(b3, s2).
        open(b1). open(b2).
        open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).
        closed(X) :- bridge(X, R), not(open(X)).
        known_status(X) :- bridge(X, R), (open(X) ; closed(X)).
        "#,
    )
    .unwrap();
    let open_roads = query(&spec, "open_road(X)").unwrap();
    assert_eq!(open_roads.len(), 1);
    assert_eq!(open_roads[0].get("X").unwrap(), &Term::atom("s1"));
    let closed = query(&spec, "closed(B)").unwrap();
    assert_eq!(closed.len(), 1);
    assert_eq!(closed[0].get("B").unwrap(), &Term::atom("b3"));
    // With NAF in play, every bridge has a known status.
    assert_eq!(query(&spec, "known_status(B)").unwrap().len(), 3);
}

/// E3 (§III.B): semantic-domain values as fact arguments —
/// `average_temperature(50)(saint_louis)`.
#[test]
fn e03_semantic_domain_values() {
    let mut spec = Specification::new();
    load(&mut spec, "average_temperature(50)(saint_louis).").unwrap();
    let answers = query(&spec, "average_temperature(T)(saint_louis)").unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("T").unwrap(), &Term::int(50));
}

/// E4 (§III.C): many-sorted constraint flags `average_temperature(green)`
/// as `bad_temp`; the two-capitals law.
#[test]
fn e04_constraints() {
    let mut spec = Specification::new();
    spec.set_sort_enforcement(SortEnforcement::Off); // the paper flags, not rejects
    load(
        &mut spec,
        r#"
        #domain temperature float(-100, 200).
        average_temperature(45)(saint_louis).
        average_temperature(green)(saint_louis).
        constraint bad_temp(X) :-
            average_temperature(X)(Y), not(domain(temperature, X)).

        capital_of(jc, missouri).
        capital_of(stl, missouri).
        constraint two_capitals(Z) :-
            capital_of(X, Z), capital_of(Y, Z), X \= Y.
        "#,
    )
    .unwrap();
    let violations = spec.check_consistency().unwrap();
    let types: Vec<String> = violations
        .iter()
        .map(|v| v.error_type.to_string())
        .collect();
    assert!(types.contains(&"bad_temp".to_string()), "{types:?}");
    assert!(types.contains(&"two_capitals".to_string()), "{types:?}");
    // The well-sorted temperature is NOT flagged.
    let bad: Vec<_> = violations
        .iter()
        .filter(|v| v.error_type == Term::atom("bad_temp"))
        .collect();
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].witnesses, vec![Term::atom("green")]);
}

/// E5 (§III.D–E): `celsius'freezing_point(0)(x)`, the default model ω, and
/// world-view-relative visibility.
#[test]
fn e05_models_and_world_views() {
    let mut spec = Specification::new();
    load(
        &mut spec,
        r#"
        celsius'freezing_point(0)(x).
        fahrenheit'freezing_point(32)(x).
        boiling(x).   // unqualified -> default model omega
        "#,
    )
    .unwrap();
    // Only ω active: neither freezing point visible, ω's fact is.
    assert!(query(&spec, "freezing_point(T)(x)").unwrap().is_empty());
    assert!(spec.provable(FactPat::new("boiling").arg("x")).unwrap());
    spec.set_world_view(&["omega", "celsius"]).unwrap();
    let answers = query(&spec, "freezing_point(T)(x)").unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("T").unwrap(), &Term::int(0));
    spec.set_world_view(&["omega", "celsius", "fahrenheit"])
        .unwrap();
    assert_eq!(query(&spec, "freezing_point(T)(x)").unwrap().len(), 2);
}

/// E6 (§IV.A–B): the closed-world assumption as a meta-fact, and the
/// "no fact may be both true and false" meta-constraint.
#[test]
fn e06_meta_rules() {
    let mut spec = Specification::new();
    spec.declare_object("b1");
    spec.declare_predicate("open_status", vec![Sort::Any, Sort::Object])
        .unwrap();
    // ω: open_status(true)(b1) asserted; nothing known for b2.
    load(&mut spec, "open_status(true)(b1). #object b2.").unwrap();

    let arg2 = |first: &str| {
        Pat::app(
            ".",
            vec![
                Pat::atom(first),
                Pat::app(".", vec![Pat::var("X"), Pat::Term(Term::nil())]),
            ],
        )
    };
    let h = |m: Pat, q: Pat, args: Pat| {
        Pat::app("h", vec![m, Pat::atom("any"), Pat::atom("any"), q, args])
    };

    // CWA meta-fact (§IV.A): any fact not known true is assumed false —
    // quantifying over predicates and objects via the registry.
    let cwa = MetaModel::new("cwa")
        .clause(RawClause::build(
            &h(Pat::var("M"), Pat::var("Q"), arg2("false")),
            &[
                Pat::app("is_model", vec![Pat::var("M")]),
                Pat::app("is_pred", vec![Pat::var("Q")]),
                Pat::app("is_object", vec![Pat::var("X")]),
                Pat::app("not", vec![h(Pat::var("M"), Pat::var("Q"), arg2("true"))]),
            ],
        ))
        .build();
    spec.register_meta_model(cwa);
    // Without the CWA: open_status(false)(b2) is undefined.
    assert!(!spec
        .provable(FactPat::new("open_status").arg("false").arg("b2"))
        .unwrap());
    spec.activate_meta_model("cwa").unwrap();
    assert!(spec
        .provable(FactPat::new("open_status").arg("false").arg("b2"))
        .unwrap());
    // …but not for b1, whose truth is known.
    assert!(!spec
        .provable(FactPat::new("open_status").arg("false").arg("b1"))
        .unwrap());
    spec.deactivate_meta_model("cwa").unwrap();

    // Meta-constraint (§IV.B): no fact both true and false.
    let err_args = Pat::app(
        ".",
        vec![
            Pat::atom("contradiction"),
            Pat::app(
                ".",
                vec![
                    Pat::var("Q"),
                    Pat::app(".", vec![Pat::var("X"), Pat::Term(Term::nil())]),
                ],
            ),
        ],
    );
    let no_contradiction = MetaModel::new("no_contradiction")
        .clause(RawClause::build(
            &h(
                Pat::var("M"),
                Pat::Term(Term::atom(gdp::core::ERROR_PRED)),
                err_args,
            ),
            &[
                h(Pat::var("M"), Pat::var("Q"), arg2("true")),
                h(Pat::var("M"), Pat::var("Q"), arg2("false")),
            ],
        ))
        .build();
    spec.register_meta_model(no_contradiction);
    spec.activate_meta_model("no_contradiction").unwrap();
    assert!(spec.check_consistency().unwrap().is_empty());
    // Assert an explicit contradiction about b1.
    load(&mut spec, "open_status(false)(b1).").unwrap();
    let violations = spec.check_consistency().unwrap();
    assert!(violations
        .iter()
        .any(|v| v.error_type == Term::atom("contradiction")));
}

/// E7 (§IV.C–D): meta-models activate on demand; deactivation removes the
/// derived inferences.
#[test]
fn e07_meta_view() {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    load(&mut spec, "& 1975 dry(lakebed).").unwrap();
    let claim = FactPat::new("dry")
        .arg("lakebed")
        .time(TimeQual::IntervalUniform(IntervalPat::closed(1970, 1980)));
    assert!(!spec.provable(claim.clone()).unwrap());
    spec.activate_meta_model("comprehension_principle").unwrap();
    assert!(spec.provable(claim.clone()).unwrap());
    assert!(spec
        .meta_view()
        .contains(&"comprehension_principle".to_string()));
    spec.deactivate_meta_model("comprehension_principle")
        .unwrap();
    assert!(!spec.provable(claim).unwrap());
}

/// E8 (§V.C): `@p vegetation(pine)(hill)` and the elevation-peak virtual
/// fact — a peak is a point whose elevation dominates all points within
/// `dist0`.
#[test]
fn e08_simple_spatial_operator() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r",
        GridResolution::square(0.0, 0.0, 1.0, 16, 16),
    )
    .unwrap();
    load(
        &mut spec,
        r#"
        @ pt(3.0, 4.0) vegetation(pine)(hill).
        @ pt(5.5, 5.5) elevation(120)(hill).
        @ pt(5.5, 6.5) elevation(90)(hill).
        @ pt(6.5, 5.5) elevation(80)(hill).

        @ P0 elevation_peak(Z0)(X) :-
            @ P0 elevation(Z0)(X),
            forall((@ P1 elevation(Z1)(X), dist(P0, P1, D), D < 2.0),
                   Z0 >= Z1).
        "#,
    )
    .unwrap();
    assert!(spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("hill")
                .at(pt(3.0, 4.0))
        )
        .unwrap());
    // The 120 m point is a peak; the 90 m point is not (120 is nearby).
    assert!(spec
        .provable(
            FactPat::new("elevation_peak")
                .arg(Pat::Int(120))
                .arg("hill")
                .at(pt(5.5, 5.5))
        )
        .unwrap());
    assert!(!spec
        .provable(
            FactPat::new("elevation_peak")
                .arg(Pat::Int(90))
                .arg("hill")
                .at(pt(5.5, 6.5))
        )
        .unwrap());
}

/// E9 (§V.C): area-uniform inheritance in both directions across the
/// refinement relation.
#[test]
fn e09_area_uniform() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    reg.add_grid(&mut spec, "r2", GridResolution::square(0.0, 0.0, 5.0, 8, 8))
        .unwrap();
    spec.assert_fact(
        FactPat::new("vegetation")
            .arg("pine")
            .arg("land")
            .space(uniform("r1", 5.0, 5.0)),
    )
    .unwrap();
    // Point inheritance.
    assert!(spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("land")
                .at(pt(2.0, 8.0))
        )
        .unwrap());
    // Finer-subarea inheritance (r2 >> r1).
    assert!(spec
        .provable(
            FactPat::new("vegetation")
                .arg("pine")
                .arg("land")
                .space(uniform("r2", 7.5, 2.5))
        )
        .unwrap());
    // Acquisition (opt-in): all four r2 subpatches ⇒ the r1 patch.
    spec.activate_meta_model("spatial_uniform_acquisition")
        .unwrap();
    for (x, y) in [(12.5, 2.5), (17.5, 2.5), (12.5, 7.5), (17.5, 7.5)] {
        spec.assert_fact(FactPat::new("soil").arg("clay").space(uniform("r2", x, y)))
            .unwrap();
    }
    assert!(spec
        .provable(
            FactPat::new("soil")
                .arg("clay")
                .space(uniform("r1", 15.0, 5.0))
        )
        .unwrap());
}

/// E10 (§V.C): the area-sampled operator — "a road may still have to be
/// drawn even when its actual thickness is much less than the map
/// resolution".
#[test]
fn e10_area_sampled() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "map",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    spec.assert_fact(FactPat::new("road").arg("rc").at(pt(13.0, 7.0)))
        .unwrap();
    let sampled = |x: f64, y: f64| {
        FactPat::new("road")
            .arg("rc")
            .space(SpaceQual::AreaSampled {
                res: Pat::atom("map"),
                at: pt(x, y),
            })
    };
    assert!(spec.provable(sampled(15.0, 5.0)).unwrap());
    assert!(!spec.provable(sampled(35.0, 5.0)).unwrap());
}

/// E11 (§V.C): the area-averaged operator, from uniform values.
#[test]
fn e11_area_averaged() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 20.0, 2, 2),
    )
    .unwrap();
    reg.add_grid(
        &mut spec,
        "r2",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    for ((x, y), z) in [(5.0, 5.0), (15.0, 5.0), (5.0, 15.0), (15.0, 15.0)]
        .iter()
        .zip([100.0, 200.0, 300.0, 400.0])
    {
        spec.assert_fact(
            FactPat::new("elevation")
                .arg(Pat::Float(z))
                .arg("land")
                .space(uniform("r2", *x, *y)),
        )
        .unwrap();
    }
    let answers = spec
        .query(
            FactPat::new("elevation")
                .arg("Z")
                .arg("land")
                .space(SpaceQual::AreaAveraged {
                    res: Pat::atom("r1"),
                    at: pt(10.0, 10.0),
                }),
        )
        .unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("Z").unwrap().as_f64(), Some(250.0));
}

/// E12 (§V.D): abstraction rules — island thresholding and the shore-line
/// composition rule.
#[test]
fn e12_abstraction_rules() {
    use gdp::spatial::abstraction::{abstraction_meta_model, compose_rule, threshold_copy_rule};
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(
        &mut spec,
        "r1",
        GridResolution::square(0.0, 0.0, 10.0, 4, 4),
    )
    .unwrap();
    reg.add_grid(&mut spec, "r2", GridResolution::square(0.0, 0.0, 5.0, 8, 8))
        .unwrap();
    spec.register_meta_model(abstraction_meta_model(
        "map_gen",
        vec![
            threshold_copy_rule("island", "r2", "r1", 2),
            compose_rule("lake", "shore", "shore_line", "r2", "r1"),
        ],
    ));
    spec.activate_meta_model("map_gen").unwrap();
    // A 3-patch island and a 1-patch island at r2.
    for (x, y) in [(2.5, 2.5), (7.5, 2.5), (2.5, 7.5)] {
        spec.assert_fact(FactPat::new("island").arg("big").space(uniform("r2", x, y)))
            .unwrap();
    }
    spec.assert_fact(
        FactPat::new("island")
            .arg("small")
            .space(uniform("r2", 22.5, 2.5)),
    )
    .unwrap();
    assert!(spec
        .provable(
            FactPat::new("island")
                .arg("big")
                .space(uniform("r1", 5.0, 5.0))
        )
        .unwrap());
    assert!(!spec
        .provable(
            FactPat::new("island")
                .arg("small")
                .space(uniform("r1", 25.0, 5.0))
        )
        .unwrap());
    // Shoreline: lake and shore patches collapsing into one r1 patch.
    spec.assert_fact(
        FactPat::new("lake")
            .arg("erie")
            .space(uniform("r2", 32.5, 32.5)),
    )
    .unwrap();
    spec.assert_fact(
        FactPat::new("shore")
            .arg("erie")
            .space(uniform("r2", 37.5, 32.5)),
    )
    .unwrap();
    assert!(spec
        .provable(
            FactPat::new("shore_line")
                .arg("erie")
                .space(uniform("r1", 35.0, 35.0))
        )
        .unwrap());
}

/// E13 (§VI.B): time intervals — comprehension principle, continuity
/// assumption, and the paper's `past(1971)` example with the year 1990.
#[test]
fn e13_temporal_models() {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    spec.set_now(1990.0);
    // past/present/future (§VI.B).
    assert!(spec
        .prove_goal(Term::pred("past", vec![Term::int(1971)]))
        .unwrap());
    assert!(!spec
        .prove_goal(Term::pred("present", vec![Term::int(1971)]))
        .unwrap());
    assert!(!spec
        .prove_goal(Term::pred("future", vec![Term::int(1971)]))
        .unwrap());

    // Continuity: open at 1970, closed at 1980 ⇒ open throughout [1970,1980).
    spec.activate_meta_model("continuity_assumption").unwrap();
    load(
        &mut spec,
        "& 1970 status(open)(b1). & 1980 status(closed)(b1).",
    )
    .unwrap();
    assert!(spec
        .provable(
            FactPat::new("status")
                .arg("open")
                .arg("b1")
                .time(TimeQual::IntervalUniform(IntervalPat::right_open(
                    1970, 1980
                )))
        )
        .unwrap());
    assert!(spec
        .provable(
            FactPat::new("status")
                .arg("open")
                .arg("b1")
                .time(TimeQual::At(Pat::Int(1975)))
        )
        .unwrap());

    // Comprehension: one sighting makes the decade "uniformly" true.
    spec.activate_meta_model("comprehension_principle").unwrap();
    load(&mut spec, "& 1975 sighted(eagle).").unwrap();
    assert!(spec
        .provable(
            FactPat::new("sighted")
                .arg("eagle")
                .time(TimeQual::IntervalUniform(IntervalPat::closed(1970, 1980)))
        )
        .unwrap());
}

/// E14 (§VII.A–B): the min–max rule on the flooded/frozen example; depth
/// interpolation accuracy; picture clarity via `card`.
#[test]
fn e14_fuzzy_sources() {
    let mut spec = Specification::new();
    // flooded=0.45, frozen=0.65 → conjunction 0.45 (§VII.A).
    spec.assert_fuzzy_fact(FactPat::new("flooded").arg("plain"), 0.45)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("frozen").arg("plain"), 0.65)
        .unwrap();
    let conj = Formula::and(
        Formula::fact(FactPat::new("flooded").arg("plain")),
        Formula::fact(FactPat::new("frozen").arg("plain")),
    );
    assert_eq!(
        ac_of(&spec, &conj, &AcOptions::default()).unwrap(),
        Some(0.45)
    );

    // Depth interpolation (§VII.B): accuracy from the interpolation rule.
    load(
        &mut spec,
        r#"
        depth_sample(10.0)(p1). depth_sample(20.0)(p2).
        %A depth_estimate(Z)(mid) :-
            depth_sample(Z1)(p1), depth_sample(Z2)(p2),
            Z is (Z1 + Z2) / 2,
            A is 1 - (Z2 - Z1) / (Z1 + Z2).
        "#,
    )
    .unwrap();
    let answers = spec
        .satisfy(&Formula::FuzzyFact(
            FactPat::new("depth_estimate").arg("Z").arg("mid"),
            Pat::var("A"),
        ))
        .unwrap();
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].get("Z").unwrap().as_f64(), Some(15.0));
    let a = answers[0].get("A").unwrap().as_f64().unwrap();
    assert!((a - (1.0 - 10.0 / 30.0)).abs() < 1e-9);

    // Picture clarity via card (§VII.B): 2 cloudy of 5 pixels → 0.6.
    load(
        &mut spec,
        r#"
        pixel(x1). pixel(x2). pixel(x3). pixel(x4). pixel(x5).
        cloudy(x2). cloudy(x5).
        %A clarity(image) :-
            card(cloudy(P), N), card(pixel(P2), N0), A is 1 - N / N0.
        "#,
    )
    .unwrap();
    let answers = spec
        .satisfy(&Formula::FuzzyFact(
            FactPat::new("clarity").arg("image"),
            Pat::var("A"),
        ))
        .unwrap();
    assert_eq!(answers[0].get("A").unwrap().as_f64(), Some(0.6));
}

/// E15 (§VII.C–E): ignoring accuracy, threshold promotion, the unified
/// fuzzy operator, fuzzy constraints.
#[test]
fn e15_fuzzy_pragmatics() {
    let mut spec = Specification::new();
    spec.assert_fuzzy_fact(FactPat::new("passable").arg("ford"), 0.9)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("passable").arg("ford"), 0.5)
        .unwrap();
    // Case 1: ignoring accuracy — the crisp fact is simply not provable.
    assert!(!spec.provable(FactPat::new("passable").arg("ford")).unwrap());
    // Case 2: threshold promotion into a model (§VII.C), over the
    // *unified* accuracy (§VII.D): max(0.9, 0.5) = 0.9 > 0.75.
    spec.declare_model("m");
    spec.register_meta_model(unified_fuzzy(UnifyPolicy::Max));
    spec.register_meta_model(unified_threshold_model("ut75", "m", 0.75));
    spec.activate_meta_model("unified_fuzzy_max").unwrap();
    spec.activate_meta_model("ut75").unwrap();
    spec.set_world_view(&["omega", "m"]).unwrap();
    assert!(spec.provable(FactPat::new("passable").arg("ford")).unwrap());

    // Simple (non-unified) threshold on individual qualifications.
    spec.register_meta_model(threshold_model("t95", "m", 0.95));
    spec.activate_meta_model("t95").unwrap();
    assert!(!spec.provable(FactPat::new("sound").arg("ford")).unwrap());

    // Fuzzy constraint (§VII.E): flag images below clarity 0.8.
    spec.assert_fuzzy_fact(FactPat::new("clarity").arg("img7"), 0.6)
        .unwrap();
    spec.constrain(Constraint::new("bad_image").witness("X").when(Formula::and(
        Formula::FuzzyFact(FactPat::new("clarity").arg("X"), Pat::var("A")),
        Formula::Cmp(CmpOp::Lt, Pat::var("A"), Pat::Float(0.8)),
    )))
    .unwrap();
    let violations = spec.check_consistency().unwrap();
    assert!(violations
        .iter()
        .any(|v| v.error_type == Term::atom("bad_image")));

    // Accuracy-qualified error (§VII.E): %0.15 ERROR(missing_bridge).
    spec.assert_fuzzy_fact(
        FactPat::new(gdp::core::ERROR_PRED).arg("missing_bridge"),
        0.15,
    )
    .unwrap();
    let fuzzy = gdp::fuzzy::fuzzy_violations(&spec).unwrap();
    assert!(fuzzy
        .iter()
        .any(|(v, a)| v.error_type == Term::atom("missing_bridge") && *a == 0.15));
}

/// E16 (§VII.F): AC propagation — derived accuracies match the recursive
/// definition and degenerate to two-valued logic on {0, 1}.
#[test]
fn e16_ac_propagation() {
    let mut spec = Specification::new();
    spec.assert_fuzzy_fact(FactPat::new("flooded").arg("plain"), 0.45)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("frozen").arg("plain"), 0.65)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("flooded").arg("valley"), 1.0)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("frozen").arg("valley"), 0.0)
        .unwrap();
    let rule = Rule::new(
        FactPat::new("hazard").arg("X"),
        Formula::and(
            Formula::fact(FactPat::new("flooded").arg("X")),
            Formula::fact(FactPat::new("frozen").arg("X")),
        ),
    );
    let n = derive_accuracies(&mut spec, &rule, &AcOptions::default()).unwrap();
    assert_eq!(n, 2);
    let get_acc = |spec: &Specification, obj: &str| {
        let answers = spec
            .satisfy(&Formula::FuzzyFact(
                FactPat::new("hazard").arg(obj),
                Pat::var("A"),
            ))
            .unwrap();
        answers[0].get("A").unwrap().as_f64().unwrap()
    };
    assert_eq!(get_acc(&spec, "plain"), 0.45); // min–max
    assert_eq!(get_acc(&spec, "valley"), 0.0); // two-valued degeneracy: 1 ∧ 0 = 0
                                               // Disjunction takes max; negation-as-failure fails on provable facts.
    let disj = Formula::or(
        Formula::fact(FactPat::new("flooded").arg("plain")),
        Formula::fact(FactPat::new("frozen").arg("plain")),
    );
    assert_eq!(
        ac_of(&spec, &disj, &AcOptions::default()).unwrap(),
        Some(0.65)
    );
    let blocked = Formula::and(
        Formula::fact(FactPat::new("flooded").arg("plain")),
        Formula::not(Formula::fact(FactPat::new("frozen").arg("plain"))),
    );
    assert_eq!(ac_of(&spec, &blocked, &AcOptions::default()).unwrap(), None);
}
