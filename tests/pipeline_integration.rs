//! Cross-crate pipeline tests: specification-language sources driving the
//! full stack (lang → core → engine → spatial/temporal/fuzzy → render) on
//! generated data.

use gdp::datagen::{Network, NetworkConfig, Terrain, TerrainConfig};
use gdp::lang::{query, Loader};
use gdp::prelude::*;
use gdp::render::{Layer, MapRenderer, Rgb};

/// A complete specification written purely in the language, with grids,
/// spatial facts, rules, and queries.
#[test]
fn language_drives_the_full_stack() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    let src = r#"
        #grid fine square(0, 0, 5, 8, 8).
        #grid coarse square(0, 0, 10, 4, 4).

        @u[fine] pt(2.5, 2.5) water(lake_a).
        @u[fine] pt(7.5, 2.5) water(lake_a).
        @u[fine] pt(2.5, 7.5) shore(lake_a).
        @ pt(31.0, 17.0) beacon(nav7).

        // Sampled at the coarse map: thin features survive (§V.C).
        ?- @s[coarse] pt(35.0, 15.0) beacon(nav7).
        // Uniform inheritance downward.
        ?- @ pt(6.0, 4.0) water(lake_a).
    "#;
    let summary = Loader::with_spatial(&mut spec, &reg).load_str(src).unwrap();
    assert_eq!(summary.directives, 2);
    assert_eq!(summary.query_results.len(), 2);
    // Multiple derivation paths (direct sample + via the finer grid) may
    // repeat the answer; what matters is provability.
    assert!(
        !summary.query_results[0].is_empty(),
        "beacon sampled at coarse"
    );
    assert_eq!(
        summary.query_results[1].len(),
        1,
        "point inside water patch"
    );
}

/// Generated network → facts → the paper's road logic, end to end, with
/// results cross-checked against the generator's ground truth.
#[test]
fn network_roundtrip_matches_ground_truth() {
    let terrain = Terrain::generate(TerrainConfig::default());
    let network = Network::generate(&terrain, NetworkConfig::default());
    let mut spec = Specification::new();
    for road in &network.roads {
        let rname = format!("road{}", road.id);
        spec.assert_fact(FactPat::new("road").arg(rname.as_str()))
            .unwrap();
        for bridge in &road.bridges {
            let bname = format!("bridge{}", bridge.id);
            spec.assert_fact(
                FactPat::new("bridge")
                    .arg(bname.as_str())
                    .arg(rname.as_str()),
            )
            .unwrap();
            if bridge.open {
                spec.assert_fact(FactPat::new("open").arg(bname.as_str()))
                    .unwrap();
            }
        }
    }
    gdp::lang::load(
        &mut spec,
        "open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).",
    )
    .unwrap();
    let open_roads: Vec<String> = query(&spec, "open_road(R)")
        .unwrap()
        .iter()
        .map(|a| a.get("R").unwrap().to_string())
        .collect();
    // Ground truth: a road is open iff all its bridges are open.
    for road in &network.roads {
        let expected = road.bridges.iter().all(|b| b.open);
        let got = open_roads.contains(&format!("road{}", road.id));
        assert_eq!(got, expected, "road{}", road.id);
    }
}

/// Terrain → facts → renderer: the rendered ASCII map agrees cell-by-cell
/// with the generator's ground truth (every pixel is a logic query).
#[test]
fn rendering_agrees_with_ground_truth() {
    let terrain = Terrain::generate(TerrainConfig {
        seed: 5,
        width: 8,
        height: 8,
        feature_scale: 4.0,
        octaves: 3,
        water_level: 0.5,
        max_elevation: 100.0,
    });
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    reg.add_grid(&mut spec, "g", GridResolution::square(0.0, 0.0, 1.0, 8, 8))
        .unwrap();
    for j in 0..8 {
        for i in 0..8 {
            if terrain.is_water(i, j) {
                spec.assert_fact(
                    FactPat::new("water")
                        .arg("sea")
                        .space(SpaceQual::AreaUniform {
                            res: Pat::atom("g"),
                            at: Pat::app(
                                "pt",
                                vec![
                                    Pat::Float(f64::from(i) + 0.5),
                                    Pat::Float(f64::from(j) + 0.5),
                                ],
                            ),
                        }),
                )
                .unwrap();
            }
        }
    }
    let ascii = MapRenderer::new("g")
        .layer(Layer::uniform("water", '~', Rgb(0, 0, 255)))
        .render_ascii(&spec, &reg)
        .unwrap();
    let rows: Vec<&str> = ascii.lines().collect();
    for j in 0..8u32 {
        for i in 0..8u32 {
            // Image row 0 is grid row 7.
            let glyph = rows[(7 - j) as usize].as_bytes()[i as usize] as char;
            assert_eq!(
                glyph == '~',
                terrain.is_water(i, j),
                "cell ({i},{j}) disagrees"
            );
        }
    }
}

/// Spatial and temporal qualifiers compose on one fact, loaded from
/// source text.
#[test]
fn spacetime_composition_through_language() {
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    let src = r#"
        #grid g square(0, 0, 10, 4, 4).
        &u[1970, 1980) @u[g] pt(5.0, 5.0) flooded(plain).
        ?- & 1975 @ pt(3.0, 3.0) flooded(plain).
        ?- & 1985 @ pt(3.0, 3.0) flooded(plain).
        ?- & 1975 @ pt(23.0, 3.0) flooded(plain).
    "#;
    let summary = Loader::with_spatial(&mut spec, &reg).load_str(src).unwrap();
    // Two derivation orders (space-then-time, time-then-space) repeat
    // the ground answer; provability is the claim.
    assert!(
        !summary.query_results[0].is_empty(),
        "inside patch & interval"
    );
    assert_eq!(summary.query_results[1].len(), 0, "outside interval");
    assert_eq!(summary.query_results[2].len(), 0, "outside patch");
}

/// The engine's resource budget protects against a non-terminating
/// specification instead of hanging.
#[test]
fn runaway_specification_reports_step_limit() {
    let mut spec = Specification::new();
    spec.set_budget(50_000, 64);
    // ancestor(X, Y) :- ancestor(X, Z), ancestor(Z, Y).  (left recursion)
    spec.kb_mut().assert_clause(
        Term::pred("ancestor", vec![Term::var(0), Term::var(1)]),
        Term::and(
            Term::pred("ancestor", vec![Term::var(0), Term::var(2)]),
            Term::pred("ancestor", vec![Term::var(2), Term::var(1)]),
        ),
    );
    let result = spec.prove_goal(Term::pred(
        "ancestor",
        vec![Term::atom("a"), Term::atom("b")],
    ));
    assert!(matches!(
        result,
        Err(SpecError::Engine(
            gdp::engine::EngineError::StepLimit { .. }
        ))
    ));
}

/// Budget exhaustion inside one query leaves the specification usable for
/// the next query.
#[test]
fn budget_exhaustion_is_recoverable() {
    let mut spec = Specification::new();
    spec.set_budget(10_000, 32);
    spec.kb_mut()
        .assert_clause(Term::atom("loop"), Term::atom("loop"));
    spec.assert_fact(FactPat::new("fine").arg("fact")).unwrap();
    assert!(spec.prove_goal(Term::atom("loop")).is_err());
    assert!(spec.provable(FactPat::new("fine").arg("fact")).unwrap());
}
