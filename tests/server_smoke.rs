//! gdp-serve smoke suite: the REPL protocol over real TCP sockets, with
//! N concurrent snapshot-reader sessions racing one writer.
//!
//! Each test hosts an in-process [`gdp::server::ServerState`] behind a
//! `TcpListener` on an ephemeral port and drives it with plain
//! `TcpStream` clients that read until the `gdp> ` prompt — exactly what
//! a human with netcat would see.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

use gdp::server::{serve_tcp, ServerState};

const PROMPT: &str = "gdp> ";

/// Boot a server on an ephemeral port; the accept loop runs (detached)
/// until the test process exits.
fn boot() -> (Arc<ServerState>, SocketAddr) {
    let state = ServerState::new().expect("server state");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept_state = Arc::clone(&state);
    std::thread::spawn(move || serve_tcp(accept_state, listener));
    (state, addr)
}

/// One protocol client: sends statement blocks / commands, reads until
/// the next prompt, returns the response text before it.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut client = Client { stream };
        client.read_to_prompt(); // banner
        client
    }

    fn read_to_prompt(&mut self) -> String {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed the connection mid-response");
            buf.extend_from_slice(&chunk[..n]);
            if buf.ends_with(PROMPT.as_bytes()) {
                buf.truncate(buf.len() - PROMPT.len());
                return String::from_utf8(buf).expect("utf8");
            }
        }
    }

    fn send(&mut self, input: &str) -> String {
        self.stream.write_all(input.as_bytes()).expect("write");
        self.stream.write_all(b"\n").expect("write");
        self.stream.flush().expect("flush");
        self.read_to_prompt()
    }
}

#[test]
fn statements_queries_and_commands_round_trip() {
    let (_state, addr) = boot();
    let mut c = Client::connect(addr);

    let reply = c.send("bridge(b1). bridge(b2). open(b1).");
    assert!(
        reply.contains("ok (3 facts, 0 rules, 0 constraints) committed as seq 1"),
        "unexpected reply: {reply}"
    );
    let reply = c.send("closed(X) :- bridge(X), not(open(X)).");
    assert!(
        reply.contains("committed as seq 2"),
        "unexpected reply: {reply}"
    );

    let reply = c.send("?- closed(X).");
    assert!(reply.contains("X = b2"), "unexpected reply: {reply}");
    assert!(!reply.contains("X = b1"), "unexpected reply: {reply}");

    let reply = c.send(":seq");
    assert!(reply.contains("pinned at seq 2; head is seq 2."), "{reply}");

    // A block with a defect rolls back atomically: nothing of it lands.
    let reply = c.send("river(r1). junk junk junk.");
    assert!(reply.contains("rolled back:"), "unexpected reply: {reply}");
    let reply = c.send("?- river(X).");
    assert!(reply.contains("no."), "rollback leaked a fact: {reply}");
    let reply = c.send(":seq");
    assert!(reply.contains("head is seq 2."), "{reply}");
}

#[test]
fn snapshot_isolation_across_sessions() {
    let (_state, addr) = boot();
    let mut writer = Client::connect(addr);
    writer.send("bridge(b1).");

    // The reader pins at seq 1 and must keep seeing exactly one bridge...
    let mut reader = Client::connect(addr);
    reader.send(":snapshot");
    let before = reader.send("?- bridge(X).");
    assert!(before.contains("X = b1"), "{before}");

    // ...while the writer commits two more.
    writer.send("bridge(b2).");
    writer.send("bridge(b3).");
    let after = reader.send("?- bridge(X).");
    assert_eq!(before, after, "reader's snapshot drifted under a writer");

    // Re-pinning at head shows all three; pinning back shows one again.
    reader.send(":snapshot");
    let head = reader.send("?- bridge(X).");
    assert!(head.contains("X = b2") && head.contains("X = b3"), "{head}");
    let reply = reader.send(":snapshot 1");
    assert!(reply.contains("pinned at seq 1."), "{reply}");
    assert_eq!(reader.send("?- bridge(X)."), before);
}

#[test]
fn buffered_transaction_commits_atomically() {
    let (_state, addr) = boot();
    let mut c = Client::connect(addr);
    c.send(":begin");
    assert!(c.send("road(r1).").contains("buffered (1 block(s)"));
    assert!(c.send("road(r2).").contains("buffered (2 block(s)"));
    // Nothing visible before :commit — not even to this session.
    assert!(c.send("?- road(X).").contains("no."));
    let reply = c.send(":commit");
    assert!(reply.contains("committed as seq 1"), "{reply}");
    let reply = c.send("?- road(X).");
    assert!(
        reply.contains("X = r1") && reply.contains("X = r2"),
        "{reply}"
    );

    // A rollback discards the buffer without touching the store.
    c.send(":begin");
    c.send("road(r3).");
    assert!(c
        .send(":rollback")
        .contains("discarded 1 buffered block(s)."));
    assert!(!c.send("?- road(X).").contains("r3"));
}

/// Four concurrent reader sessions, each pinned at a different commit,
/// query repeatedly while a writer streams further commits. Every
/// reader's answers must stay byte-identical to the sequential baseline
/// captured at its pinned generation.
#[test]
fn concurrent_readers_match_sequential_baselines() {
    let (_state, addr) = boot();
    let mut writer = Client::connect(addr);
    // Commits 1..=4: the k-th adds span(k) and a rule over it.
    for k in 1..=4 {
        writer.send(&format!("span(s{k})."));
    }

    // Reader k pins at seq k and records its baseline answer.
    let sessions: Vec<_> = (1..=4u64)
        .map(|k| {
            let mut c = Client::connect(addr);
            let reply = c.send(&format!(":snapshot {k}"));
            assert!(reply.contains(&format!("pinned at seq {k}.")), "{reply}");
            let baseline = c.send("?- span(X).");
            for j in 1..=4 {
                assert_eq!(
                    baseline.contains(&format!("X = s{j}")),
                    j <= k as usize,
                    "reader {k} baseline wrong: {baseline}"
                );
            }
            (k, c, baseline)
        })
        .collect();

    // Writer keeps committing from its own thread while readers re-query.
    let writer_thread = std::thread::spawn(move || {
        for k in 5..=12 {
            writer.send(&format!("span(s{k})."));
        }
        writer.send(":seq")
    });
    let readers: Vec<_> = sessions
        .into_iter()
        .map(|(k, mut c, baseline)| {
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let now = c.send("?- span(X).");
                    assert_eq!(now, baseline, "reader {k} drifted under the writer");
                }
                (k, c, baseline)
            })
        })
        .collect();
    let writer_reply = writer_thread.join().expect("writer");
    assert!(writer_reply.contains("head is seq 12."), "{writer_reply}");
    for handle in readers {
        let (_k, mut c, baseline) = handle.join().expect("reader");
        // After the dust settles the pinned views still match; at head
        // they see everything.
        assert_eq!(c.send("?- span(X)."), baseline);
        c.send(":snapshot");
        let head = c.send("?- span(X).");
        for j in 1..=12 {
            assert!(head.contains(&format!("X = s{j}")), "missing s{j}: {head}");
        }
    }
}

/// Pinning at a sequence that has fallen out of the retained history
/// names the window that *is* available, so an operator can re-pin
/// without guessing (ISSUE 9 satellite).
#[test]
fn expired_snapshot_request_reports_the_retained_window() {
    let (_state, addr) = boot();
    let mut writer = Client::connect(addr);
    // 66 commits with a 64-record retention: seqs 1 and 2 age out
    // (records 3..=66 remain, so the reconstructible window is 2..=66).
    for k in 1..=66 {
        let reply = writer.send(&format!("span(s{k})."));
        assert!(reply.contains(&format!("committed as seq {k}")), "{reply}");
    }

    let reply = writer.send(":snapshot 0");
    assert!(reply.contains("no longer retained"), "{reply}");
    assert!(
        reply.contains("retained window is 2..=66"),
        "window missing from: {reply}"
    );
    assert!(reply.contains("last 64 commits"), "{reply}");

    // The named window is honest: its oldest edge works.
    let reply = writer.send(":snapshot 2");
    assert!(reply.contains("pinned at seq 2."), "{reply}");
    let reply = writer.send("?- span(X).");
    assert!(
        reply.contains("X = s2") && !reply.contains("X = s3"),
        "{reply}"
    );
}

#[test]
fn audit_runs_against_the_pinned_snapshot() {
    let (_state, addr) = boot();
    let mut writer = Client::connect(addr);
    writer.send("bridge(b1). open(b1).");
    writer.send("constraint unopened_bridge(X) :- bridge(X), not(open(X)).");

    let mut reader = Client::connect(addr);
    reader.send(":snapshot");
    let clean = reader.send(":audit -j 2");
    assert!(clean.contains("consistent across"), "{clean}");

    // A violation committed after the pin is invisible to the reader's
    // audit, visible to a fresh head audit.
    writer.send("bridge(b2).");
    let pinned = reader.send(":audit -j 2");
    assert!(pinned.contains("consistent across"), "{pinned}");
    reader.send(":snapshot");
    let head = reader.send(":audit -j 2");
    assert!(head.contains("unopened_bridge"), "{head}");
}
