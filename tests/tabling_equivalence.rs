//! Tabled resolution must be observationally equivalent to plain SLD
//! resolution: for any knowledge base and goal, the solution set (with
//! duplicates) is identical with tabling on and off — including goals
//! under negation-as-failure, whose soundness depends on the table only
//! ever serving *completed* answer sets.

use proptest::prelude::*;

use gdp::engine::{Budget, KnowledgeBase, Solver, Term};

const ATOMS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// The rule packs every generated KB carries, spanning the constructs the
/// solver treats specially: conjunction, disjunction, recursion, and NAF.
fn install_rules(kb: &mut KnowledgeBase) {
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    // r(X) :- p(X), q(X).
    kb.assert_clause(
        Term::pred("r", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::pred("q", vec![x.clone()]),
        ),
    );
    // s(X, Y) :- e(X, Y) ; e(Y, X).
    kb.assert_clause(
        Term::pred("s", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::pred("e", vec![y.clone(), x.clone()]),
        ),
    );
    // t(X, Y) :- e(X, Y) ; (e(X, Z), t(Z, Y)).   (recursive reachability)
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z.clone(), y.clone()]),
            ),
        ),
    );
    // u(X) :- p(X), not(q(X)).   (NAF over a tabled predicate)
    kb.assert_clause(
        Term::pred("u", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::not(Term::pred("q", vec![x])),
        ),
    );
}

fn build_kb(unary: &[(u8, u8)], edges: &[(u8, u8)], tabled: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for &(p, a) in unary {
        let name = if p == 0 { "p" } else { "q" };
        kb.assert_fact(Term::pred(
            name,
            vec![Term::atom(ATOMS[a as usize % ATOMS.len()])],
        ));
    }
    for &(a, b) in edges {
        let (a, b) = (a as usize % ATOMS.len(), b as usize % ATOMS.len());
        // Keep the edge relation acyclic (edges point "up" the atom
        // order): the recursive reachability rule `t/2` diverges on
        // cycles under plain SLD, and the property needs both solvers to
        // terminate.
        if a >= b {
            continue;
        }
        kb.assert_fact(Term::pred(
            "e",
            vec![Term::atom(ATOMS[a]), Term::atom(ATOMS[b])],
        ));
    }
    install_rules(&mut kb);
    if tabled {
        kb.set_tabling(true);
        kb.set_table_all(true);
    }
    kb
}

fn arb_goal() -> impl Strategy<Value = Term> {
    let atom = (0usize..ATOMS.len())
        .prop_map(|i| Term::atom(ATOMS[i]))
        .boxed();
    prop_oneof![
        Just(Term::pred("r", vec![Term::var(0)])),
        Just(Term::pred("s", vec![Term::var(0), Term::var(1)])),
        Just(Term::pred("u", vec![Term::var(0)])),
        atom.clone()
            .prop_map(|a| Term::pred("t", vec![a, Term::var(0)])),
        atom.clone()
            .prop_map(|a| Term::not(Term::pred("r", vec![a]))),
        // Non-ground `not` is now a reported error, so reachability under
        // negation is exercised ground (`not(t(a,b))`) and the existential
        // reading through `absent(t(a,X))`.
        (atom.clone(), atom.clone()).prop_map(|(a, b)| Term::not(Term::pred("t", vec![a, b]))),
        atom.clone()
            .prop_map(|a| Term::absent(Term::pred("t", vec![a, Term::var(0)]))),
        (atom.clone(), atom).prop_map(|(a, b)| Term::and(
            Term::pred("t", vec![a, Term::var(0)]),
            Term::not(Term::pred("e", vec![Term::var(0), b])),
        )),
    ]
}

/// Render a solution set order-insensitively.
fn solution_fingerprint(solver: &Solver<'_>, goal: &Term) -> Vec<String> {
    let mut rendered: Vec<String> = solver
        .solve_all(goal.clone())
        .expect("solve within budget")
        .iter()
        .map(|sol| {
            sol.bindings()
                .iter()
                .map(|(v, t)| format!("{v:?}={t}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    rendered.sort();
    rendered
}

proptest! {
    /// For random fact sets and goals, tabling changes no observable
    /// outcome: same solution multiset, same provability, same count.
    #[test]
    fn tabled_equals_untabled(
        unary in prop::collection::vec((0u8..2, 0u8..5), 0..12),
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        goals in prop::collection::vec(arb_goal(), 1..5),
    ) {
        let plain_kb = build_kb(&unary, &edges, false);
        let tabled_kb = build_kb(&unary, &edges, true);
        for goal in &goals {
            // Fresh solvers per goal: the budget is shared across all
            // queries of one solver instance.
            let plain = Solver::new(&plain_kb, Budget::default());
            let tabled = Solver::new(&tabled_kb, Budget::default());
            prop_assert_eq!(
                solution_fingerprint(&plain, goal),
                solution_fingerprint(&tabled, goal),
                "solution sets diverge on {}", goal
            );
            // Replay path: the second evaluation is served from the table.
            prop_assert_eq!(
                solution_fingerprint(&plain, goal),
                solution_fingerprint(&tabled, goal),
                "replayed solution sets diverge on {}", goal
            );
            prop_assert_eq!(
                plain.prove(goal.clone()).unwrap(),
                tabled.prove(goal.clone()).unwrap()
            );
            prop_assert_eq!(
                plain.count(goal.clone()).unwrap(),
                tabled.count(goal.clone()).unwrap()
            );
        }
    }
}

/// Mutating the knowledge base between queries bumps its epoch; stale
/// table entries must be invalidated, never replayed.
#[test]
fn epoch_invalidation_between_queries() {
    let mut kb = build_kb(&[(0, 0), (0, 1), (1, 0)], &[(0, 1)], true);
    let goal = Term::pred("r", vec![Term::var(0)]);
    // r(X) ≡ p(X) ∧ q(X): only `a` qualifies initially.
    assert_eq!(
        Solver::new(&kb, Budget::default())
            .solve_all(goal.clone())
            .unwrap()
            .len(),
        1
    );
    let epoch_before = kb.epoch();
    kb.assert_fact(Term::pred("q", vec![Term::atom("b")]));
    assert!(kb.epoch() > epoch_before, "assert must bump the epoch");
    assert_eq!(
        Solver::new(&kb, Budget::default())
            .solve_all(goal.clone())
            .unwrap()
            .len(),
        2,
        "stale table entry served after assert"
    );
    kb.retract_fact(&Term::pred("q", vec![Term::atom("a")]));
    assert_eq!(
        Solver::new(&kb, Budget::default())
            .solve_all(goal)
            .unwrap()
            .len(),
        1,
        "stale table entry served after retract"
    );
    assert!(kb.table().stats().invalidations >= 1);
}

/// Tabling marks survive the whole stack: a `Specification` with tabling
/// enabled must answer exactly as one without, and expose the solver's
/// execution counters after each query.
#[test]
fn specification_level_equivalence() {
    use gdp::core::{FactPat, Pat, Specification};

    let build = |tabling: bool| -> Specification {
        let (mut spec, _reg) = gdp::standard_spec().expect("standard spec");
        spec.enable_tabling(tabling);
        spec.assert_fact(FactPat::new("road").arg("r1")).unwrap();
        spec.assert_fact(FactPat::new("road").arg("r2")).unwrap();
        spec
    };
    let plain = build(false);
    let tabled = build(true);
    let pat = || FactPat::new("road").arg(Pat::var("X"));
    assert_eq!(plain.query(pat()).unwrap(), tabled.query(pat()).unwrap());
    // Second query replays; answers must not change.
    assert_eq!(plain.query(pat()).unwrap(), tabled.query(pat()).unwrap());
    assert!(tabled.tabling_enabled());
    assert!(!plain.tabling_enabled());
    assert!(plain.solver_stats().steps > 0);
}
