//! Property-based tests (proptest) over the system's core invariants:
//! unification, NAF consistency, interval algebra, fuzzy algebra, grid
//! refinement, and parser round-trips.

use proptest::prelude::*;

use gdp::fuzzy::Truth;
use gdp::prelude::*;
use gdp::temporal::Interval;

// ---------- term / unification properties ----------------------------------

fn arb_ground_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Term::int),
        (-100.0f64..100.0).prop_map(Term::float),
        "[a-z][a-z0-9_]{0,6}".prop_map(|s| Term::atom(&s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        ("[a-z][a-z0-9_]{0,4}", prop::collection::vec(inner, 1..4))
            .prop_map(|(f, args)| Term::pred(&f, args))
    })
}

proptest! {
    /// Unification of a term with itself always succeeds and binds nothing.
    #[test]
    fn unify_reflexive(t in arb_ground_term()) {
        let mut store = gdp::engine::BindStore::new();
        prop_assert!(store.unify(&t, &t));
    }

    /// A fresh variable unifies with any ground term and resolves to it.
    #[test]
    fn unify_var_binds_ground(t in arb_ground_term()) {
        let mut store = gdp::engine::BindStore::new();
        store.ensure(0);
        prop_assert!(store.unify(&Term::var(0), &t));
        prop_assert_eq!(gdp::engine::resolve_deep(&store, &Term::var(0)), t);
    }

    /// Unification is symmetric on ground terms.
    #[test]
    fn unify_symmetric(a in arb_ground_term(), b in arb_ground_term()) {
        let mut s1 = gdp::engine::BindStore::new();
        let mut s2 = gdp::engine::BindStore::new();
        prop_assert_eq!(s1.unify(&a, &b), s2.unify(&b, &a));
    }

    /// The standard order of terms is total and antisymmetric on samples.
    #[test]
    fn term_order_total(a in arb_ground_term(), b in arb_ground_term()) {
        use std::cmp::Ordering;
        let ab = a.order(&b);
        let ba = b.order(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }
}

// ---------- solver properties -----------------------------------------------

proptest! {
    /// NAF consistency: for any set of ground facts, `q` and `not(q)` are
    /// never both provable, and exactly one of them always is.
    #[test]
    fn naf_excluded_middle(
        present in prop::collection::hash_set("[a-d]", 0..4),
        probe in "[a-f]",
    ) {
        let mut kb = KnowledgeBase::new();
        for name in &present {
            kb.assert_fact(Term::pred("p", vec![Term::atom(name)]));
        }
        let solver = Solver::new(&kb, Budget::default());
        let goal = Term::pred("p", vec![Term::atom(&probe)]);
        let pos = solver.prove(goal.clone()).unwrap();
        let neg = solver.prove(Term::not(goal)).unwrap();
        prop_assert!(pos != neg);
        prop_assert_eq!(pos, present.contains(&probe));
    }

    /// `card` counts exactly the number of distinct asserted facts.
    #[test]
    fn card_counts_distinct(names in prop::collection::hash_set("[a-z]{1,3}", 0..12)) {
        let mut kb = KnowledgeBase::new();
        for n in &names {
            kb.assert_fact(Term::pred("item", vec![Term::atom(n)]));
            // Duplicate assertion must not inflate the count.
            kb.assert_fact(Term::pred("item", vec![Term::atom(n)]));
        }
        let solver = Solver::new(&kb, Budget::default());
        let goal = Term::pred(
            "card",
            vec![Term::pred("item", vec![Term::var(0)]), Term::var(1)],
        );
        let sols = solver.solve_all(goal).unwrap();
        prop_assert_eq!(
            sols[0].get(gdp::engine::Var(1)).unwrap(),
            &Term::int(names.len() as i64)
        );
    }

    /// findall preserves assertion order and multiplicity.
    #[test]
    fn findall_order_and_multiplicity(values in prop::collection::vec(0i64..50, 0..12)) {
        let mut kb = KnowledgeBase::new();
        for v in &values {
            kb.assert_fact(Term::pred("v", vec![Term::int(*v)]));
        }
        let solver = Solver::new(&kb, Budget::default());
        let goal = Term::pred(
            "findall",
            vec![
                Term::var(0),
                Term::pred("v", vec![Term::var(0)]),
                Term::var(1),
            ],
        );
        let sols = solver.solve_all(goal).unwrap();
        let list = sols[0].get(gdp::engine::Var(1)).unwrap().clone();
        let items = gdp::engine::list_to_vec(&list).unwrap();
        let expected: Vec<Term> = values.iter().map(|v| Term::int(*v)).collect();
        prop_assert_eq!(items, expected);
    }
}

// ---------- interval algebra --------------------------------------------------

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-100.0f64..100.0, 0.0f64..50.0, any::<bool>(), any::<bool>()).prop_map(|(lo, len, lc, hc)| {
        Interval {
            lo,
            hi: lo + len,
            lo_closed: lc,
            hi_closed: hc,
        }
    })
}

proptest! {
    /// Subset is reflexive and transitive; contained points agree.
    #[test]
    fn interval_subset_laws(a in arb_interval(), b in arb_interval(), t in -150.0f64..150.0) {
        prop_assert!(a.subset_of(&a));
        if a.subset_of(&b) && a.contains(t) {
            prop_assert!(b.contains(t));
        }
    }

    /// Overlap is symmetric, and implied by a shared point.
    #[test]
    fn interval_overlap_laws(a in arb_interval(), b in arb_interval(), t in -150.0f64..150.0) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if a.contains(t) && b.contains(t) {
            prop_assert!(a.overlaps(&b));
        }
    }

    /// Interval terms round-trip through the reified encoding.
    #[test]
    fn interval_term_round_trip(a in arb_interval()) {
        prop_assert_eq!(Interval::from_term(&a.to_term()), Some(a));
    }
}

// ---------- fuzzy algebra ------------------------------------------------------

fn arb_truth() -> impl Strategy<Value = Truth> {
    (0.0f64..=1.0).prop_map(|v| Truth::new(v).unwrap())
}

proptest! {
    /// Min–max lattice laws: commutativity, associativity, absorption,
    /// idempotence, De Morgan, involution.
    #[test]
    fn fuzzy_lattice_laws(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
        let eq = |x: Truth, y: Truth| (x.get() - y.get()).abs() < 1e-12;
        prop_assert!(eq(a.and(b), b.and(a)));
        prop_assert!(eq(a.or(b), b.or(a)));
        prop_assert!(eq(a.and(b.and(c)), a.and(b).and(c)));
        prop_assert!(eq(a.or(a.and(b)), a));
        prop_assert!(eq(a.and(a), a));
        prop_assert!(eq(a.and(b).not(), a.not().or(b.not())));
        prop_assert!(eq(a.not().not(), a));
    }

    /// Conjunction never exceeds either operand (the paper's conservative
    /// guarantee: "no fact will be given an accuracy greater than…").
    #[test]
    fn conjunction_is_conservative(a in arb_truth(), b in arb_truth()) {
        prop_assert!(a.and(b).get() <= a.get());
        prop_assert!(a.and(b).get() <= b.get());
        prop_assert!(a.or(b).get() >= a.get());
    }

    /// AC over asserted accuracies: conjunction accuracy equals the min of
    /// the inputs, and never exceeds either.
    #[test]
    fn ac_conjunction_is_min(x in 0.0f64..=1.0, y in 0.0f64..=1.0) {
        use gdp::fuzzy::ac::{ac_of, AcOptions};
        let mut spec = Specification::new();
        spec.assert_fuzzy_fact(FactPat::new("p").arg("o"), x).unwrap();
        spec.assert_fuzzy_fact(FactPat::new("q").arg("o"), y).unwrap();
        let f = Formula::and(
            Formula::fact(FactPat::new("p").arg("o")),
            Formula::fact(FactPat::new("q").arg("o")),
        );
        let got = ac_of(&spec, &f, &AcOptions::default()).unwrap().unwrap();
        prop_assert!((got - x.min(y)).abs() < 1e-12);
    }
}

// ---------- grid refinement ------------------------------------------------------

proptest! {
    /// Refinement by an integer factor holds, and mapping commutes: the
    /// coarse patch of a point equals the coarse patch of its fine
    /// representative.
    #[test]
    fn refinement_mapping_commutes(
        factor in 2u32..5,
        nx in 2u32..6,
        x in 0.0f64..1.0,
        y in 0.0f64..1.0,
    ) {
        let coarse = GridResolution::square(0.0, 0.0, f64::from(factor), nx, nx);
        let fine = GridResolution::square(0.0, 0.0, 1.0, nx * factor, nx * factor);
        prop_assert!(fine.refines(&coarse));
        prop_assert!(!coarse.strictly_refines(&fine));
        let p = Point::new(x * coarse.x1() * 0.999, y * coarse.y1() * 0.999);
        let via_fine = fine.map(p).and_then(|fp| coarse.map(fp));
        prop_assert_eq!(via_fine, coarse.map(p));
    }

    /// The paper's refinement definition: R2(P1) = R2(P2) ⇒ R1(P1) = R1(P2).
    #[test]
    fn refinement_definition(
        x1 in 0.0f64..20.0, y1 in 0.0f64..20.0,
        x2 in 0.0f64..20.0, y2 in 0.0f64..20.0,
    ) {
        let r1 = GridResolution::square(0.0, 0.0, 10.0, 2, 2);
        let r2 = GridResolution::square(0.0, 0.0, 2.5, 8, 8);
        prop_assert!(r2.refines(&r1));
        let (p1, p2) = (Point::new(x1, y1), Point::new(x2, y2));
        if r2.map(p1) == r2.map(p2) {
            prop_assert_eq!(r1.map(p1), r1.map(p2));
        }
    }
}

// ---------- parser round-trip -----------------------------------------------------

proptest! {
    /// Printed facts re-parse to the same printed form, for generated
    /// predicate/argument combinations.
    #[test]
    fn fact_print_parse_idempotent(
        pred in "[a-z][a-z0-9_]{0,8}",
        atoms in prop::collection::vec("[a-z][a-z0-9_]{0,6}", 0..4),
        ints in prop::collection::vec(-1000i64..1000, 0..3),
    ) {
        // Reserved formula keywords can't be predicate names in the syntax.
        prop_assume!(!matches!(
            pred.as_str(),
            "not" | "forall" | "card" | "avg" | "sum" | "min" | "max"
                | "count" | "domain" | "true" | "is" | "mod" | "constraint"
        ));
        let mut fact = FactPat::new(&pred);
        for a in &atoms {
            fact = fact.arg(Pat::Atom(a.clone()));
        }
        for i in &ints {
            fact = fact.arg(Pat::Int(*i));
        }
        let printed = format!("{}.", gdp::lang::print_fact(&fact));
        let parsed = gdp::lang::parse_program(&printed).unwrap();
        let reprinted = gdp::lang::print_statement(&parsed[0]);
        prop_assert_eq!(printed, reprinted);
    }

    /// Arbitrary accuracies survive the fuzzy-fact syntax.
    #[test]
    fn fuzzy_fact_accuracy_round_trip(acc in 0.001f64..=0.999) {
        let src = format!("%{acc} clarity(image).");
        let parsed = gdp::lang::parse_program(&src).unwrap();
        match &parsed[0] {
            gdp::lang::Statement::FuzzyFact(_, a) => prop_assert_eq!(*a, acc),
            other => prop_assert!(false, "unexpected statement {:?}", other.kind()),
        }
    }
}

// ---------- reify/decode consistency --------------------------------------------------

proptest! {
    /// Compiling a fact to the reified encoding and decoding it back
    /// yields exactly the concrete syntax the printer produces — the
    /// explanation facility and the language agree on notation.
    #[test]
    fn decode_matches_printer(
        pred in "[a-z][a-z0-9_]{0,8}",
        args in prop::collection::vec(
            prop_oneof![
                "[a-z][a-z0-9_]{0,5}".prop_map(Pat::Atom),
                (-999i64..999).prop_map(Pat::Int),
            ],
            0..4,
        ),
        with_model in proptest::bool::ANY,
        at_point in proptest::option::of((-50i64..50, -50i64..50)),
    ) {
        prop_assume!(!matches!(
            pred.as_str(),
            "not" | "forall" | "card" | "avg" | "sum" | "min" | "max"
                | "count" | "domain" | "true" | "is" | "mod" | "constraint" | "raw"
        ));
        let mut fact = FactPat::new(&pred).args(args);
        if with_model {
            fact = fact.model(Pat::atom("survey84"));
        }
        if let Some((x, y)) = at_point {
            fact = fact.at(Pat::app("pt", vec![Pat::Int(x), Pat::Int(y)]));
        }
        let mut vt = gdp::core::VarTable::new();
        let compiled = fact.compile(&mut vt, gdp::core::Target::Holds);
        prop_assert_eq!(gdp::core::decode(&compiled), gdp::lang::print_fact(&fact));
    }
}

// ---------- specification-level invariants ------------------------------------------

proptest! {
    /// Whatever ground facts are asserted, a consistent spec stays
    /// consistent under world-view switching when no constraints exist.
    #[test]
    fn no_constraints_no_violations(
        facts in prop::collection::vec(("[a-h]", "[a-h]"), 0..10),
    ) {
        let mut spec = Specification::new();
        spec.declare_model("alt");
        for (p, o) in &facts {
            spec.assert_fact(FactPat::new(p).arg(Pat::Atom(o.clone()))).unwrap();
            spec.assert_fact(
                FactPat::new(p).arg(Pat::Atom(o.clone())).model("alt"),
            ).unwrap();
        }
        prop_assert!(spec.check_consistency().unwrap().is_empty());
        spec.set_world_view(&["omega", "alt"]).unwrap();
        prop_assert!(spec.check_consistency().unwrap().is_empty());
    }

    /// Asserted facts are always provable; never-asserted probes never are
    /// (soundness + no spurious derivation without rules).
    #[test]
    fn assertion_provability_soundness(
        present in prop::collection::hash_set("[a-e]", 1..5),
        probe in "[a-g]",
    ) {
        let mut spec = Specification::new();
        for o in &present {
            spec.assert_fact(FactPat::new("site").arg(Pat::Atom(o.clone()))).unwrap();
        }
        let provable = spec
            .provable(FactPat::new("site").arg(Pat::Atom(probe.clone())))
            .unwrap();
        prop_assert_eq!(provable, present.contains(&probe));
    }
}
