//! WAL recovery × crash-at-commit-boundary chaos.
//!
//! A writer applies a deterministic, seed-driven stream of transactions
//! to a live knowledge base, appending each committed delta to a
//! write-ahead log. For every commit boundary K we simulate a crash —
//! the log holds exactly K records, possibly followed by a torn partial
//! record — and assert that replaying the log over a fresh base
//! reproduces the live KB *at that boundary* exactly: clause content and
//! order, index integrity, per-predicate generations, and epoch
//! (all folded into [`KnowledgeBase::content_eq`]).
//!
//! The seed comes from `GDP_CHAOS` (its leading integer), so the CI
//! chaos leg re-runs the suite under a seed matrix; unset, a fixed
//! default keeps the test deterministic. `GDP_TABLING=on|all` is honored
//! by running the same suite with tabling armed, which must not disturb
//! recovery equivalence.

use gdp::engine::wal::{replay, Wal, WalHeader};
use gdp::engine::{Budget, GroupId, KnowledgeBase, Solver, Term};

/// Seed from `GDP_CHAOS` ("1234" or "kind:1234" forms both yield 1234).
fn chaos_seed() -> u64 {
    std::env::var("GDP_CHAOS")
        .ok()
        .and_then(|v| {
            v.split(':')
                .find_map(|part| part.trim().parse::<u64>().ok())
        })
        .unwrap_or(0x5EED)
}

/// Tabling requested via `GDP_TABLING` (the suite-wide ablation hook)?
fn tabling_on() -> bool {
    matches!(
        std::env::var("GDP_TABLING").as_deref(),
        Ok("on") | Ok("all")
    )
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        // Numerical Recipes constants; plenty for op-stream shuffling.
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The deterministic base image both the live store and every recovery
/// start from. Recovery only works from an identical base — that is the
/// documented contract ("base image + log").
fn base_kb(tabling: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.assert_fact(Term::pred("seed_fact", vec![Term::atom("s0")]));
    if tabling {
        kb.set_tabling(true);
        kb.set_table_all(true);
    }
    kb
}

fn fact(pred: &str, i: u64) -> Term {
    Term::pred(
        pred,
        vec![Term::atom(&format!("x{i}")), Term::int(i as i64)],
    )
}

const PREDS: [&str; 3] = ["road", "bridge", "sensor"];

/// Apply one seed-driven transaction to `kb` with recording active, and
/// return how many operations it performed.
fn run_txn(kb: &mut KnowledgeBase, rng: &mut Lcg, txn: u64) -> usize {
    let mut ops = 0;
    for _ in 0..1 + rng.below(4) {
        let pred = PREDS[rng.below(3) as usize];
        match rng.below(10) {
            // Mostly asserts, so the store grows and later retracts bite.
            0..=5 => {
                let group = if rng.below(2) == 0 {
                    GroupId::root()
                } else {
                    GroupId::named(&format!("g{}", rng.below(3)))
                };
                kb.assert_clause_in(
                    group,
                    fact(pred, txn * 100 + rng.below(50)),
                    Term::atom("true"),
                );
                ops += 1;
            }
            6..=7 => {
                // Retract a fact that may or may not exist — both paths
                // must round-trip through the log identically.
                kb.retract_fact(&fact(pred, rng.below(txn.max(1) * 100)));
                ops += 1;
            }
            _ => {
                kb.retract_group(GroupId::named(&format!("g{}", rng.below(3))));
                ops += 1;
            }
        }
    }
    ops
}

/// Solve `pred(X, N)` for every pred, concatenated — the observable
/// answer stream used to double-check recovered stores behave alike.
fn all_answers(kb: &KnowledgeBase) -> Vec<String> {
    let mut out = Vec::new();
    for pred in PREDS {
        let goal = Term::pred(pred, vec![Term::var(0), Term::var(1)]);
        let solutions = Solver::new(kb, Budget::new(1_000_000, 128))
            .solve_all(goal)
            .expect("solve");
        out.extend(solutions.iter().map(|s| format!("{s:?}")));
    }
    out
}

#[test]
fn recovery_reproduces_every_commit_boundary() {
    let seed = chaos_seed();
    let tabling = tabling_on();
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "gdp-wal-recovery-{}-{seed}-{tabling}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    const COMMITS: u64 = 12;
    let mut live = base_kb(tabling);
    let mut wal = Wal::create(&path, hdr()).expect("create wal");
    let mut rng = Lcg(seed);
    // `boundaries[k]` is the live KB right after commit k (0 = base).
    let mut boundaries = vec![live.snapshot()];
    for txn in 1..=COMMITS {
        live.begin_delta();
        let mark = live.delta_len();
        run_txn(&mut live, &mut rng, txn);
        let delta = live.delta_since(mark);
        live.end_delta();
        let seq = wal.append(&delta).expect("append");
        assert_eq!(seq, txn);
        if tabling {
            // Populate the answer table between commits: recovery must
            // not depend on (or corrupt) tabled state.
            let _ = all_answers(&live);
        }
        boundaries.push(live.snapshot());
    }
    drop(wal);
    let full = std::fs::read(&path).expect("read log");

    for (k, boundary) in boundaries.iter().enumerate() {
        // Crash with exactly k durable records: cut the file after the
        // k-th record, plus a torn tail from the start of record k+1
        // (when there is one) to exercise tail truncation.
        let cut = prefix_len(&full, k);
        for torn in [0usize, 1, 7] {
            let end = (cut + torn).min(full.len());
            std::fs::write(&path, &full[..end]).expect("write crash image");
            let (_wal, records) = Wal::open(&path, hdr()).expect("open");
            assert_eq!(records.len(), k, "boundary {k}, torn {torn}");
            let mut recovered = base_kb(tabling);
            replay(&records, &mut recovered);
            assert!(
                recovered.content_eq(boundary),
                "recover(log) != live KB at boundary {k} (seed {seed}, torn {torn})"
            );
            recovered
                .check_index_integrity()
                .unwrap_or_else(|e| panic!("index integrity at boundary {k}: {e}"));
            assert_eq!(
                all_answers(&recovered),
                all_answers(boundary),
                "answers diverge at boundary {k}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// The fresh-log header used throughout (fingerprint irrelevant here —
/// these tests replay over in-process KBs, not fingerprinted bases).
fn hdr() -> WalHeader {
    WalHeader::new(0x1986, 1)
}

/// Byte length of the header plus the first `k` records of an intact
/// log image (records start after the 28-byte header).
fn prefix_len(log: &[u8], k: usize) -> usize {
    let mut pos = 28;
    for _ in 0..k {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
    }
    pos
}

#[test]
fn garbage_tail_is_truncated_not_fatal() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("gdp-wal-garbage-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut live = base_kb(false);
    let mut wal = Wal::create(&path, hdr()).expect("create");
    live.begin_delta();
    live.assert_fact(fact("road", 1));
    let delta = live.end_delta().expect("delta");
    wal.append(&delta).expect("append");
    drop(wal);
    // A flipped byte in a would-be second record must not poison the
    // first: checksum rejects it, open truncates, appends continue.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("append garbage");
    f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x01])
        .expect("write");
    drop(f);
    let (mut wal, records) = Wal::open(&path, hdr()).expect("open");
    assert_eq!(records.len(), 1);
    assert_eq!(wal.next_seq(), 2);
    // The log stays appendable after truncation.
    live.begin_delta();
    live.assert_fact(fact("road", 2));
    let delta = live.end_delta().expect("delta");
    assert_eq!(wal.append(&delta).expect("append"), 2);
    drop(wal);
    let (_wal, records) = Wal::open(&path, hdr()).expect("reopen");
    assert_eq!(records.len(), 2);
    let mut recovered = base_kb(false);
    replay(&records, &mut recovered);
    assert!(recovered.content_eq(&live));
    let _ = std::fs::remove_file(&path);
}
