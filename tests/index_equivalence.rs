//! Range/hash indexing must be observationally invisible: with indexing
//! forced off (`KnowledgeBase::set_indexing(false)`, the in-process
//! equivalent of `GDP_INDEX=off`) every audit and every query answer set
//! is byte-identical — same violations, same answers, same order — to the
//! indexed run, tabling off and on, at 1 and 4 workers. Retract and
//! rollback must leave the position-exact range indexes consistent with
//! the clause store (`check_index_integrity`), with no full rebuild.

use proptest::prelude::*;

use gdp::core::{CmpOp, Constraint, FactPat, Formula, Pat, Specification};

const MODELS: [&str; 3] = ["m0", "m1", "m2"];
const CELLS: [&str; 4] = ["c0", "c1", "c2", "c3"];

/// Same world as the incremental-equivalence suite: the per-model `gap`
/// constraint carries a `V1 < V2` comparison the bound-pushdown planner
/// turns into a `range_call`, so the indexed run actually consults the
/// h/5 interval index over attribute values.
fn base_spec(indexed: bool) -> Specification {
    let mut spec = Specification::new();
    spec.set_incremental(true);
    spec.kb_mut().set_indexing(indexed);
    for m in MODELS {
        spec.declare_model(m);
        spec.constrain(
            Constraint::new("gap")
                .model(m)
                .witness(Pat::var("X"))
                .witness(Pat::var("Y"))
                .when(Formula::all(vec![
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("X"))
                            .arg(Pat::var("V1"))
                            .model(m),
                    ),
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("Y"))
                            .arg(Pat::var("V2"))
                            .model(m),
                    ),
                    Formula::Cmp(CmpOp::Lt, Pat::var("V1"), Pat::var("V2")),
                ])),
        )
        .expect("safe constraint");
    }
    spec.constrain(
        Constraint::new("contradiction")
            .witness(Pat::var("C"))
            .when(Formula::and(
                Formula::fact(FactPat::new("wet").arg(Pat::var("C"))),
                Formula::fact(FactPat::new("dry").arg(Pat::var("C"))),
            )),
    )
    .expect("safe constraint");
    spec.set_world_view(&["omega", "m0", "m1", "m2"])
        .expect("declared models");
    spec
}

/// One random mutation, applied identically to both specs. Float and
/// integer readings mix so the interval index sees both numeric towers;
/// retracts may target absent facts.
fn apply_op(spec: &mut Specification, kind: u8, a: u8, b: u8) {
    let model = MODELS[a as usize % MODELS.len()];
    let cell = CELLS[a as usize % CELLS.len()];
    let value = if b % 2 == 0 {
        Pat::Int(i64::from(b))
    } else {
        Pat::Float(f64::from(b) / 2.0)
    };
    let reading = FactPat::new("reading")
        .arg(Pat::Atom(format!("o{}", a % 4)))
        .arg(value)
        .model(model);
    match kind % 5 {
        0 => {
            spec.assert_fact(reading).expect("ground fact");
        }
        1 => {
            spec.assert_fact(FactPat::new("wet").arg(cell))
                .expect("ground fact");
        }
        2 => {
            spec.assert_fact(FactPat::new("dry").arg(cell))
                .expect("ground fact");
        }
        3 => {
            spec.retract_fact(reading).expect("pattern is ground");
        }
        _ => {
            spec.retract_fact(FactPat::new("wet").arg(cell))
                .expect("pattern is ground");
        }
    }
}

/// The full observable state, order included: parallel audit, sequential
/// audit, and every answer of every relation the constraints consult.
fn fingerprint(spec: &Specification, workers: usize) -> Vec<String> {
    let audit = spec.audit_world_views(workers).expect("parallel audit");
    let mut out: Vec<String> = audit.violations.iter().map(|v| v.to_string()).collect();
    for (model, count) in &audit.per_model {
        out.push(format!("per_model {model} {count}"));
    }
    for v in spec.check_consistency().expect("sequential audit") {
        out.push(format!("seq {v}"));
    }
    for m in MODELS {
        for answer in spec
            .query(
                FactPat::new("reading")
                    .arg(Pat::var("X"))
                    .arg(Pat::var("V"))
                    .model(m),
            )
            .expect("query")
        {
            out.push(format!(
                "{m}:reading {} {}",
                answer.get("X").expect("bound"),
                answer.get("V").expect("bound")
            ));
        }
    }
    for p in ["wet", "dry"] {
        for answer in spec
            .query(FactPat::new(p).arg(Pat::var("X")))
            .expect("query")
        {
            out.push(format!("{p} {}", answer.get("X").expect("bound")));
        }
    }
    out
}

proptest! {
    /// Twin specs — one indexed, one with indexing forced off — fed the
    /// same random transaction stream stay byte-identical after every
    /// commit, tabling off and on, at 1 and 4 workers; the indexed twin's
    /// range indexes stay position-exact throughout.
    #[test]
    fn indexed_equals_unindexed(
        ops in prop::collection::vec((0u8..5, 0u8..12, 0u8..6), 1..20),
        workers in prop_oneof![Just(1usize), Just(4usize)],
        tabled in any::<bool>(),
    ) {
        let mut indexed = base_spec(true);
        let mut plain = base_spec(false);
        indexed.enable_tabling(tabled);
        plain.enable_tabling(tabled);
        for (round, chunk) in ops.chunks(4).enumerate() {
            for spec in [&mut indexed, &mut plain] {
                spec.begin_txn().expect("no open transaction");
                for &(kind, a, b) in chunk {
                    apply_op(spec, kind, a, b);
                }
                spec.commit_txn().expect("open transaction");
            }
            indexed.kb().check_index_integrity()
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                fingerprint(&indexed, workers),
                fingerprint(&plain, workers),
                "indexed and unindexed state diverge in round {} (tabled={})",
                round, tabled
            );
        }
    }

    /// Retract and rollback are position-exact: rolling back a doomed
    /// transaction on the indexed spec restores the exact observable
    /// state of an unindexed twin that never saw it, and the range
    /// indexes pass the integrity audit — maintained from delta
    /// inverses, never rebuilt.
    #[test]
    fn retract_and_rollback_keep_indexes_exact(
        prefix in prop::collection::vec((0u8..5, 0u8..12, 0u8..6), 0..8),
        doomed in prop::collection::vec((0u8..5, 0u8..12, 0u8..6), 1..8),
        workers in prop_oneof![Just(1usize), Just(4usize)],
        tabled in any::<bool>(),
    ) {
        let mut indexed = base_spec(true);
        let mut plain = base_spec(false);
        indexed.enable_tabling(tabled);
        plain.enable_tabling(tabled);
        for &(kind, a, b) in &prefix {
            apply_op(&mut indexed, kind, a, b);
            apply_op(&mut plain, kind, a, b);
        }
        indexed.kb().check_index_integrity().map_err(TestCaseError::fail)?;
        let before = fingerprint(&indexed, workers);
        indexed.begin_txn().expect("no open transaction");
        for &(kind, a, b) in &doomed {
            apply_op(&mut indexed, kind, a, b);
        }
        indexed.rollback_txn().expect("open transaction");
        indexed.kb().check_index_integrity().map_err(TestCaseError::fail)?;
        prop_assert_eq!(&fingerprint(&indexed, workers), &before,
            "rollback not exact on the indexed spec (tabled={})", tabled);
        prop_assert_eq!(&fingerprint(&plain, workers), &before,
            "indexed and unindexed twins diverge after rollback (tabled={})", tabled);
    }
}

/// Deterministic end-to-end: the corpus spec `missouri.gdp` — temporal
/// and spatial packs installed, so the tat/value interval indexes and the
/// patch grid index are all live — audits and answers identically with
/// indexing on and off.
#[test]
fn corpus_spec_indexed_matches_unindexed() {
    let dir = ["specs", "../../specs"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_dir())
        .expect("specs/ directory not found");
    let source = std::fs::read_to_string(dir.join("missouri.gdp")).expect("read spec");
    let mut states = Vec::new();
    for indexed in [true, false] {
        let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
        spec.kb_mut().set_indexing(indexed);
        gdp::lang::Loader::with_spatial(&mut spec, &reg)
            .load_str(&source)
            .expect("missouri.gdp loads");
        if indexed {
            spec.kb().check_index_integrity().expect("indexes exact");
        }
        states.push(fingerprint_corpus(&spec));
    }
    assert_eq!(states[0], states[1], "corpus audit diverges under indexing");
}

fn fingerprint_corpus(spec: &Specification) -> Vec<String> {
    let mut out: Vec<String> = spec
        .check_consistency()
        .expect("sequential audit")
        .iter()
        .map(|v| v.to_string())
        .collect();
    let audit = spec.audit_world_views(2).expect("parallel audit");
    for v in &audit.violations {
        out.push(format!("par {v}"));
    }
    out
}
