//! The incremental update engine must be observationally invisible:
//! `audit_incremental` over any committed (and merged) delta stream is
//! byte-identical to a full `audit_world_views` re-audit — tabling off and
//! on, at several worker counts — rollback restores the exact pre-
//! transaction audit and answer sets, and mutation inverses (assert then
//! retract, group assert then group retract) are perfect round-trips.

use proptest::prelude::*;

use gdp::core::{CmpOp, Constraint, FactPat, Formula, Pat, RawClause, Specification};
use gdp::engine::{Delta, Term};

const MODELS: [&str; 3] = ["m0", "m1", "m2"];
const CELLS: [&str; 4] = ["c0", "c1", "c2", "c3"];

/// Three survey models plus omega in the world view; an omega
/// contradiction constraint (`wet` ∧ `dry`) and a per-model ordered-pair
/// constraint over integer readings, so violations can appear and
/// disappear in any member as facts stream in and out.
fn base_spec() -> Specification {
    let mut spec = Specification::new();
    spec.set_incremental(true);
    for m in MODELS {
        spec.declare_model(m);
        spec.constrain(
            Constraint::new("gap")
                .model(m)
                .witness(Pat::var("X"))
                .witness(Pat::var("Y"))
                .when(Formula::all(vec![
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("X"))
                            .arg(Pat::var("V1"))
                            .model(m),
                    ),
                    Formula::fact(
                        FactPat::new("reading")
                            .arg(Pat::var("Y"))
                            .arg(Pat::var("V2"))
                            .model(m),
                    ),
                    Formula::Cmp(CmpOp::Lt, Pat::var("V1"), Pat::var("V2")),
                ])),
        )
        .expect("safe constraint");
    }
    spec.constrain(
        Constraint::new("contradiction")
            .witness(Pat::var("C"))
            .when(Formula::and(
                Formula::fact(FactPat::new("wet").arg(Pat::var("C"))),
                Formula::fact(FactPat::new("dry").arg(Pat::var("C"))),
            )),
    )
    .expect("safe constraint");
    spec.set_world_view(&["omega", "m0", "m1", "m2"])
        .expect("declared models");
    spec
}

/// One random mutation. `kind` selects the shape; retracts may target
/// absent facts (a no-op retract must also be equivalence-preserving).
fn apply_op(spec: &mut Specification, kind: u8, a: u8, b: u8) {
    let model = MODELS[a as usize % MODELS.len()];
    let cell = CELLS[a as usize % CELLS.len()];
    let reading = FactPat::new("reading")
        .arg(Pat::Atom(format!("o{}", a % 4)))
        .arg(Pat::Int(i64::from(b)))
        .model(model);
    match kind % 5 {
        0 => {
            spec.assert_fact(reading).expect("ground fact");
        }
        1 => {
            spec.assert_fact(FactPat::new("wet").arg(cell))
                .expect("ground fact");
        }
        2 => {
            spec.assert_fact(FactPat::new("dry").arg(cell))
                .expect("ground fact");
        }
        3 => {
            spec.retract_fact(reading).expect("pattern is ground");
        }
        _ => {
            spec.retract_fact(FactPat::new("wet").arg(cell))
                .expect("pattern is ground");
        }
    }
}

/// Render the observable state: the sequential audit plus the full answer
/// sets of every relation the constraints consult.
fn fingerprint(spec: &Specification) -> Vec<String> {
    let mut out: Vec<String> = spec
        .check_consistency()
        .expect("sequential audit")
        .iter()
        .map(|v| v.to_string())
        .collect();
    for m in MODELS {
        for answer in spec
            .query(
                FactPat::new("reading")
                    .arg(Pat::var("X"))
                    .arg(Pat::var("V"))
                    .model(m),
            )
            .expect("query")
        {
            out.push(format!(
                "{m}:reading {} {}",
                answer.get("X").expect("bound"),
                answer.get("V").expect("bound")
            ));
        }
    }
    for p in ["wet", "dry"] {
        for answer in spec
            .query(FactPat::new(p).arg(Pat::var("X")))
            .expect("query")
        {
            out.push(format!("{p} {}", answer.get("X").expect("bound")));
        }
    }
    out
}

proptest! {
    /// For random transaction streams — commits sometimes accumulated and
    /// merged before auditing — the incremental audit over the pending
    /// delta equals the full re-audit and the sequential checker, tabling
    /// off and on, at 1 and 4 workers.
    #[test]
    fn incremental_audit_equals_full_reaudit(
        ops in prop::collection::vec((0u8..5, 0u8..12, 0u8..6), 1..20),
        workers in prop_oneof![Just(1usize), Just(4usize)],
        tabled in any::<bool>(),
    ) {
        let mut spec = base_spec();
        spec.enable_tabling(tabled);
        // Seed the member cache.
        spec.audit_world_views(workers).expect("seed audit");
        let mut pending = Delta::new();
        let rounds = ops.chunks(4).count();
        for (round, chunk) in ops.chunks(4).enumerate() {
            spec.begin_txn().expect("no open transaction");
            for &(kind, a, b) in chunk {
                apply_op(&mut spec, kind, a, b);
            }
            pending.merge(spec.commit_txn().expect("open transaction"));
            // Audit every other commit: odd rounds exercise merged
            // multi-commit deltas.
            if round % 2 == 0 && round + 1 != rounds {
                continue;
            }
            let incremental = spec
                .audit_incremental(&pending, workers)
                .expect("incremental audit");
            let full = spec.audit_world_views(workers).expect("full audit");
            prop_assert_eq!(&incremental.violations, &full.violations,
                "violations diverge in round {} (tabled={})", round, tabled);
            prop_assert_eq!(&incremental.per_model, &full.per_model,
                "per-model counts diverge in round {}", round);
            let sequential = spec.check_consistency().expect("sequential");
            prop_assert_eq!(&incremental.violations, &sequential,
                "sequential divergence in round {}", round);
            pending = Delta::new();
        }
    }

    /// Rolling a transaction back restores the exact prior observable
    /// state: same audit, same answer sets, tabling off and on.
    #[test]
    fn rollback_restores_prior_state(
        prefix in prop::collection::vec((0u8..3, 0u8..12, 0u8..6), 0..8),
        doomed in prop::collection::vec((0u8..5, 0u8..12, 0u8..6), 1..8),
        tabled in any::<bool>(),
    ) {
        let mut spec = base_spec();
        spec.enable_tabling(tabled);
        for &(kind, a, b) in &prefix {
            apply_op(&mut spec, kind, a, b);
        }
        let before = fingerprint(&spec);
        spec.begin_txn().expect("no open transaction");
        for &(kind, a, b) in &doomed {
            apply_op(&mut spec, kind, a, b);
        }
        let undone = spec.rollback_txn().expect("open transaction");
        prop_assert!(undone <= doomed.len() * 2,
            "rollback undid {} ops for {} mutations", undone, doomed.len());
        prop_assert_eq!(fingerprint(&spec), before, "rollback not exact (tabled={})", tabled);
    }

    /// Mutation inverses are perfect round-trips: asserting fresh facts
    /// and then retracting them restores the exact prior audit result and
    /// answer sets, with and without the answer table.
    #[test]
    fn assert_then_retract_is_identity(
        facts in prop::collection::vec((0u8..3, 0u8..12, 0u8..6), 1..8),
        tabled in any::<bool>(),
    ) {
        let mut spec = base_spec();
        spec.enable_tabling(tabled);
        // A base population so the round-trip crosses existing answers.
        for (i, m) in MODELS.iter().enumerate() {
            spec.assert_fact(
                FactPat::new("reading")
                    .arg(Pat::Atom(format!("base{i}")))
                    .arg(Pat::Int(i as i64))
                    .model(*m),
            )
            .expect("ground fact");
        }
        let before = fingerprint(&spec);
        // Fresh names (`z<i>`) guarantee the retract removes exactly what
        // the assert added.
        let mut added = Vec::new();
        for (i, &(kind, a, b)) in facts.iter().enumerate() {
            let pat = match kind % 3 {
                0 => FactPat::new("reading")
                    .arg(Pat::Atom(format!("z{i}")))
                    .arg(Pat::Int(i64::from(b)))
                    .model(MODELS[a as usize % MODELS.len()]),
                1 => FactPat::new("wet").arg(Pat::Atom(format!("z{i}"))),
                _ => FactPat::new("dry").arg(Pat::Atom(format!("z{i}"))),
            };
            spec.assert_fact(pat.clone()).expect("ground fact");
            added.push(pat);
        }
        for pat in added {
            prop_assert!(spec.retract_fact(pat).expect("ground pattern"),
                "a freshly asserted fact must be retractable");
        }
        prop_assert_eq!(fingerprint(&spec), before, "round-trip not exact (tabled={})", tabled);
    }

    /// Group round-trip: raw clauses asserted under a scratch group and
    /// then retracted as a group restore the exact prior state.
    #[test]
    fn group_retract_is_identity(
        n in 1usize..6,
        tabled in any::<bool>(),
    ) {
        let mut spec = base_spec();
        spec.enable_tabling(tabled);
        spec.assert_fact(FactPat::new("wet").arg("c0")).expect("ground fact");
        let before = fingerprint(&spec);
        for i in 0..n {
            spec.try_assert_raw(
                "scratch",
                RawClause::fact(Term::pred("aux", vec![Term::atom(&format!("g{i}"))])),
            )
            .expect("callable head");
        }
        let removed = spec.retract_raw_group("scratch");
        prop_assert_eq!(removed, n, "group retract must remove what was asserted");
        prop_assert_eq!(fingerprint(&spec), before, "group round-trip not exact (tabled={})", tabled);
    }
}

/// Deterministic end-to-end: the corpus spec `missouri.gdp` audited
/// incrementally after a targeted transaction matches its full re-audit.
#[test]
fn corpus_spec_incremental_audit_matches_full() {
    let dir = ["specs", "../../specs"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_dir())
        .expect("specs/ directory not found");
    let source = std::fs::read_to_string(dir.join("missouri.gdp")).expect("read spec");
    let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
    gdp::lang::Loader::with_spatial(&mut spec, &reg)
        .load_str(&source)
        .expect("missouri.gdp loads");
    spec.set_incremental(true);
    spec.audit_world_views(2).expect("seed audit");
    spec.begin_txn().expect("no open transaction");
    spec.assert_fact(FactPat::new("capital_of").arg("rolla").arg("missouri"))
        .expect("ground fact");
    let delta = spec.commit_txn().expect("open transaction");
    assert!(!delta.is_empty());
    let incremental = spec.audit_incremental(&delta, 2).expect("incremental");
    let full = spec.audit_world_views(2).expect("full");
    assert_eq!(incremental.violations, full.violations);
    assert_eq!(incremental.per_model, full.per_model);
    assert_eq!(
        incremental.violations,
        spec.check_consistency().expect("sequential")
    );
}
