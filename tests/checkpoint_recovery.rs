//! Checkpointed recovery: bounded replay, fallback ladder, refused
//! mismatches.
//!
//! Companion to `wal_recovery.rs` (raw log replay) and `io_faults.rs`
//! (fault-point sweep): these tests exercise the *checkpoint* side of
//! durability — that recovery work stays proportional to the checkpoint
//! interval rather than total history, that a torn newest image falls
//! back down the ladder (previous image, then the base) without losing a
//! commit, that genuinely unreachable commits are refused rather than
//! silently dropped, and that a base image which no longer matches what
//! the log was created over (the `--load` file edited between runs —
//! satellite of ISSUE 9) is a hard, well-worded error.

use std::path::{Path, PathBuf};

use gdp::core::{DurabilityOptions, SpecStore, Specification};
use gdp::engine::Wal;
use gdp::prelude::FactPat;
use gdp::server::ServerState;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gdp-ckpt-{tag}-{}.wal", std::process::id()));
    p
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

fn remove_family(path: &Path) {
    for suffix in ["", ".prev", ".ckpt", ".ckpt.prev", ".ckpt.tmp"] {
        let _ = std::fs::remove_file(sibling(path, suffix));
    }
}

fn base() -> Specification {
    let mut spec = Specification::new();
    spec.assert_fact(FactPat::new("seed").arg("s0")).unwrap();
    spec
}

fn opts(interval: u64) -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_interval: Some(interval),
        io_faults: None,
    }
}

/// Commit facts `x(from)..=x(to)` one per transaction.
fn commit_range(store: &SpecStore, from: u64, to: u64) {
    for i in from..=to {
        let name = format!("x{i}");
        store
            .commit(|spec| spec.assert_fact(FactPat::new("f").arg(name.as_str())))
            .unwrap();
    }
}

/// Assert the store holds exactly facts `x1..=head`.
fn assert_content(store: &SpecStore, head: u64) {
    store.read(|spec| {
        for i in 1..=head + 4 {
            let present = spec
                .provable(FactPat::new("f").arg(format!("x{i}").as_str()))
                .unwrap();
            assert_eq!(present, i <= head, "fact x{i} at head {head}");
        }
    });
}

/// Flip one byte in the middle of a file — a torn/corrupt image that
/// still parses as "a record is here" but fails its checksum.
fn corrupt_middle(path: &Path) {
    let mut bytes = std::fs::read(path).expect("read image");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(path, bytes).expect("rewrite image");
}

/// Replay work after a clean run is bounded by the checkpoint interval:
/// the live segment holds at most `interval` records no matter how much
/// history accumulated.
#[test]
fn live_segment_stays_bounded_by_the_interval() {
    let path = temp_path("bounded");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 39);
    drop(store);

    let (_, records) = Wal::scan(&path).expect("scan").expect("live segment");
    assert!(
        records.len() <= 4,
        "live segment holds {} records after 39 commits (interval 4)",
        records.len()
    );
    assert!(sibling(&path, ".ckpt").exists(), "no checkpoint image");
    assert!(sibling(&path, ".prev").exists(), "no rotated segment");

    let (store, head) = SpecStore::recover_durable(base(), &path, opts(4)).unwrap();
    assert_eq!(head, 39);
    assert_content(&store, 39);
    remove_family(&path);
}

/// An explicit `checkpoint()` folds head into an image on demand and
/// rotates the log; recovery replays only what came after it.
#[test]
fn on_demand_checkpoint_rotates_and_recovers() {
    let path = temp_path("demand");
    remove_family(&path);
    // No auto cadence: images appear only when asked for.
    let store =
        SpecStore::create_durable(base(), &path, DurabilityOptions::no_checkpoints()).unwrap();
    commit_range(&store, 1, 6);
    assert_eq!(store.checkpoint().unwrap(), 6);
    commit_range(&store, 7, 9);
    drop(store);

    let (_, records) = Wal::scan(&path).expect("scan").expect("live segment");
    assert_eq!(records.len(), 3, "only the post-checkpoint suffix replays");

    let (store, head) =
        SpecStore::recover_durable(base(), &path, DurabilityOptions::no_checkpoints()).unwrap();
    assert_eq!(head, 9);
    assert_content(&store, 9);
    remove_family(&path);
}

#[test]
fn checkpoint_on_a_memory_store_is_refused() {
    let store = SpecStore::new(base());
    let err = store.checkpoint().unwrap_err().to_string();
    assert!(err.contains("no write-ahead log"), "{err}");
}

/// A torn newest image falls back to the previous one: the retained
/// (ckpt.prev, wal.prev, wal) chain still reaches head contiguously, so
/// corruption costs replay time, never commits.
#[test]
fn torn_newest_checkpoint_falls_back_to_previous() {
    let path = temp_path("fallback1");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 10); // checkpoints at 4 and 8; wal holds 9..=10
    drop(store);
    assert!(sibling(&path, ".ckpt.prev").exists(), "need two images");

    corrupt_middle(&sibling(&path, ".ckpt"));
    let (store, head) = SpecStore::recover_durable(base(), &path, opts(4)).unwrap();
    assert_eq!(head, 10, "fallback lost commits");
    assert_content(&store, 10);
    remove_family(&path);
}

/// With only one image ever written, tearing it falls all the way back
/// to the base: the rotated segment still holds records 1..=interval,
/// so base + both segments reach head.
#[test]
fn torn_only_checkpoint_falls_back_to_base() {
    let path = temp_path("fallback2");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 6); // one checkpoint (at 4); wal.prev = 1..=4, wal = 5..=6
    drop(store);
    assert!(!sibling(&path, ".ckpt.prev").exists());

    corrupt_middle(&sibling(&path, ".ckpt"));
    let (store, head) = SpecStore::recover_durable(base(), &path, opts(4)).unwrap();
    assert_eq!(head, 6, "base fallback lost commits");
    assert_content(&store, 6);
    remove_family(&path);
}

/// When *no* retained chain reaches the newest on-disk commit — both
/// images torn after the early segments were already rotated away —
/// recovery must refuse loudly rather than resurrect a stale prefix as
/// if it were head.
#[test]
fn unreachable_commits_are_refused_not_silently_dropped() {
    let path = temp_path("unreachable");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 10); // two rotations: records 1..=4 are gone from disk
    drop(store);

    corrupt_middle(&sibling(&path, ".ckpt"));
    corrupt_middle(&sibling(&path, ".ckpt.prev"));
    let err = SpecStore::recover_durable(base(), &path, opts(4))
        .err()
        .expect("recovery over an unreachable head must refuse")
        .to_string();
    assert!(
        err.contains("recovery refused") && err.contains("contiguously"),
        "{err}"
    );
    remove_family(&path);
}

/// A base that hashes differently from what the log was created over is
/// a hard error naming both fingerprints (store-level form).
#[test]
fn recovery_over_a_different_base_is_refused() {
    let path = temp_path("basemismatch");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 6);
    drop(store);

    let mut other = Specification::new();
    other
        .assert_fact(FactPat::new("seed").arg("edited"))
        .unwrap();
    let err = SpecStore::recover_durable(other, &path, opts(4))
        .err()
        .expect("recovery over a different base must refuse")
        .to_string();
    assert!(
        err.contains("different base image") && err.contains("fingerprint"),
        "{err}"
    );
    remove_family(&path);
}

/// The full `--load` shape of the same refusal: a durable server is
/// started with a load file in its base image, the file is edited
/// between runs, and the restart must refuse recovery instead of
/// replaying the log over a silently different world.
#[test]
fn edited_load_file_refuses_recovery_at_restart() {
    let wal = temp_path("loadmismatch");
    remove_family(&wal);
    let mut load = std::env::temp_dir();
    load.push(format!("gdp-ckpt-load-{}.gdp", std::process::id()));
    std::fs::write(&load, "bridge(b1). open(b1).\n").unwrap();

    let load_files = [load.clone()];
    let (state, head) =
        ServerState::durable_opts(&wal, DurabilityOptions::default(), &load_files).unwrap();
    assert_eq!(head, 0);
    state
        .store()
        .commit(|spec| spec.assert_fact(FactPat::new("bridge").arg("b2")))
        .unwrap();
    drop(state);

    // Same bytes → recovery proceeds and the commit is back.
    let (state, head) =
        ServerState::durable_opts(&wal, DurabilityOptions::default(), &load_files).unwrap();
    assert_eq!(head, 1);
    assert!(state
        .store()
        .read(|spec| spec.provable(FactPat::new("bridge").arg("b2")))
        .unwrap());
    drop(state);

    // Edited load file → refused with the fingerprint message.
    std::fs::write(&load, "bridge(b1).\n").unwrap();
    let err = ServerState::durable_opts(&wal, DurabilityOptions::default(), &load_files)
        .err()
        .expect("restart over an edited --load file must refuse")
        .to_string();
    assert!(
        err.contains("different base image") && err.contains("--load"),
        "{err}"
    );

    let _ = std::fs::remove_file(&load);
    remove_family(&wal);
}

/// Retained history survives checkpointed recovery: a snapshot pinned a
/// few commits back still reconstructs after restart.
#[test]
fn pinned_snapshots_work_across_checkpointed_restart() {
    let path = temp_path("pins");
    remove_family(&path);
    let store = SpecStore::create_durable(base(), &path, opts(4)).unwrap();
    commit_range(&store, 1, 9);
    drop(store);

    let (store, head) = SpecStore::recover_durable(base(), &path, opts(4)).unwrap();
    assert_eq!(head, 9);
    // Seqs replayed from the chosen image forward are reconstructible.
    let snap = store.snapshot_at(8).unwrap();
    assert!(snap.provable(FactPat::new("f").arg("x8")).unwrap());
    assert!(!snap.provable(FactPat::new("f").arg("x9")).unwrap());
    remove_family(&path);
}
