//! The specification corpus: every `.gdp` file under `specs/` must load
//! cleanly, and — by corpus convention — every `?-` query in a file must
//! return at least one answer.

use gdp::lang::Loader;

fn corpus_dir() -> std::path::PathBuf {
    // Tests run with the crate under crates/gdp; specs/ is two levels up.
    let candidates = [
        std::path::PathBuf::from("specs"),
        std::path::PathBuf::from("../../specs"),
    ];
    candidates
        .into_iter()
        .find(|p| p.is_dir())
        .expect("specs/ directory not found")
}

fn check_file(name: &str) {
    let path = corpus_dir().join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
    let summary = Loader::with_spatial(&mut spec, &reg)
        .load_str(&source)
        .unwrap_or_else(|e| panic!("{name} failed to load: {e}"));
    assert!(
        !summary.query_results.is_empty(),
        "{name} has no validation queries"
    );
    for (i, answers) in summary.query_results.iter().enumerate() {
        assert!(
            !answers.is_empty(),
            "{name}: query #{} returned no answers",
            i + 1
        );
    }
}

#[test]
fn missouri_gazetteer_loads_and_validates() {
    check_file("missouri.gdp");
}

#[test]
fn harbor_chart_loads_and_validates() {
    check_file("harbor.gdp");
}

#[test]
fn bridge_timeline_loads_and_validates() {
    check_file("timeline.gdp");
}

#[test]
fn survey_quality_loads_and_validates() {
    check_file("survey_quality.gdp");
}

/// The gazetteer's constraints fire exactly as designed once the folklore
/// model is admitted.
#[test]
fn missouri_constraints_are_world_view_relative() {
    let source = std::fs::read_to_string(corpus_dir().join("missouri.gdp")).unwrap();
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    Loader::with_spatial(&mut spec, &reg)
        .load_str(&source)
        .unwrap();
    assert!(spec.check_consistency().unwrap().is_empty());
    spec.set_world_view(&["omega", "folklore"]).unwrap();
    let violations = spec.check_consistency().unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].error_type,
        gdp::prelude::Term::atom("two_capitals")
    );
}

/// The survey file's doubtful-station constraint flags exactly station_c.
#[test]
fn survey_quality_flags_doubtful_station() {
    let source = std::fs::read_to_string(corpus_dir().join("survey_quality.gdp")).unwrap();
    let (mut spec, reg) = gdp::standard_spec().unwrap();
    Loader::with_spatial(&mut spec, &reg)
        .load_str(&source)
        .unwrap();
    let violations = spec.check_consistency().unwrap();
    assert_eq!(violations.len(), 1);
    assert_eq!(
        violations[0].witnesses,
        vec![gdp::prelude::Term::atom("station_c")]
    );
}
