//! Property: merging the committed deltas of a transaction stream and
//! replaying the merge onto a fresh base is equivalent to applying the
//! commits directly — *including* when rolled-back transactions land
//! between two commits that later get merged.
//!
//! Three knowledge bases run in lockstep per seed:
//!
//! * **live** — executes every transaction, commits some, rolls the rest
//!   back (the interactive-session view);
//! * **direct** — applies each committed delta's ops the moment the
//!   commit lands (the follower view);
//! * **replayed** — applies the single *merged* delta at the very end
//!   (the catch-up view).
//!
//! `replayed` must be [`content_eq`] to `direct` (both are pure op
//! streams, so even generation counters agree), and must match `live`
//! on everything rollbacks don't deliberately perturb: clause content,
//! solution streams, and index integrity. Generations/epoch are *meant*
//! to differ on `live` after a rollback (tables built inside the undone
//! window must not resurrect), so those are excluded from the live leg.
//!
//! [`content_eq`]: gdp::engine::KnowledgeBase::content_eq

use gdp::engine::{Budget, Delta, GroupId, KnowledgeBase, PredKey, Solver, Term};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const PREDS: [&str; 3] = ["road", "bridge", "sensor"];

fn fact(pred: &str, i: u64) -> Term {
    Term::pred(
        pred,
        vec![Term::atom(&format!("x{i}")), Term::int(i as i64)],
    )
}

fn base_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for (i, pred) in PREDS.iter().enumerate() {
        kb.assert_fact(fact(pred, i as u64));
    }
    kb
}

/// One random mutation against `kb`.
fn random_op(kb: &mut KnowledgeBase, rng: &mut Lcg, txn: u64) {
    let pred = PREDS[rng.below(3) as usize];
    match rng.below(12) {
        0..=6 => {
            let group = if rng.below(2) == 0 {
                GroupId::root()
            } else {
                GroupId::named(&format!("g{}", rng.below(3)))
            };
            kb.assert_clause_in(
                group,
                fact(pred, txn * 100 + rng.below(40)),
                Term::atom("true"),
            );
        }
        7..=8 => {
            kb.retract_fact(&fact(pred, rng.below(txn.max(1) * 100)));
        }
        9..=10 => {
            kb.retract_group(GroupId::named(&format!("g{}", rng.below(3))));
        }
        _ => {
            kb.retract_predicate(PredKey::new(pred, 2));
        }
    }
}

/// Every solution of `pred(X, N)` for every pred, rendered — the
/// observable stream (order included) the equivalence is judged on.
fn all_answers(kb: &KnowledgeBase) -> Vec<String> {
    let mut out = Vec::new();
    for pred in PREDS {
        let goal = Term::pred(pred, vec![Term::var(0), Term::var(1)]);
        let solutions = Solver::new(kb, Budget::new(1_000_000, 128))
            .solve_all(goal)
            .expect("solve");
        out.extend(solutions.iter().map(|s| format!("{s:?}")));
    }
    out
}

/// Same clause store, judged without generation counters: predicate set,
/// clause order, heads, bodies, and groups.
fn same_clauses(a: &KnowledgeBase, b: &KnowledgeBase) -> bool {
    let mut left: Vec<String> = Vec::new();
    let mut right: Vec<String> = Vec::new();
    for (kb, out) in [(a, &mut left), (b, &mut right)] {
        for pred in PREDS {
            let key = PredKey::new(pred, 2);
            for clause in kb.clauses_of(key) {
                out.push(format!(
                    "{pred} {:?} {:?} {:?}",
                    clause.head, clause.body, clause.group
                ));
            }
        }
    }
    left == right
}

#[test]
fn merged_replay_equals_direct_apply_across_rollbacks() {
    for seed in 0..64u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1));
        let mut live = base_kb();
        let mut direct = base_kb();
        let mut merged = Delta::new();
        let mut commits = 0usize;
        let mut rollbacks = 0usize;

        for txn in 1..=10u64 {
            live.begin_delta();
            let mark = live.delta_len();
            for _ in 0..1 + rng.below(4) {
                random_op(&mut live, &mut rng, txn);
            }
            if rng.below(3) == 0 {
                // This transaction lands *between* two merged commits and
                // must leave no trace in the merged delta.
                live.rollback_to(mark);
                rollbacks += 1;
            } else {
                let delta = live.delta_since(mark);
                for op in delta.ops() {
                    direct.apply_op(op);
                }
                merged.merge(delta);
                commits += 1;
            }
            live.end_delta();
        }
        assert!(
            commits > 0 && rollbacks > 0 || seed > 4,
            "seed {seed} degenerate"
        );

        let mut replayed = base_kb();
        for op in merged.ops() {
            replayed.apply_op(op);
        }

        // The follower and the catch-up reader agree *exactly* — same
        // clauses, same generations, same epoch.
        assert!(
            replayed.content_eq(&direct),
            "seed {seed}: replay(merge) != direct apply"
        );
        // Both agree with the live session on everything observable
        // through queries; only rollback-bumped generations may differ.
        assert!(
            same_clauses(&replayed, &live),
            "seed {seed}: replayed clause store diverged from live"
        );
        assert_eq!(
            all_answers(&replayed),
            all_answers(&live),
            "seed {seed}: answers diverged"
        );
        replayed
            .check_index_integrity()
            .unwrap_or_else(|e| panic!("seed {seed}: index integrity: {e}"));
        live.check_index_integrity()
            .unwrap_or_else(|e| panic!("seed {seed}: live index integrity: {e}"));
    }
}

/// The exact scenario from the issue, pinned as a deterministic case: a
/// rollback lands between two commits whose deltas are merged, and the
/// merged replay reproduces the committed state only.
#[test]
fn rollback_between_two_merged_commits_leaves_no_trace() {
    let mut live = base_kb();
    let mut merged = Delta::new();

    live.begin_delta();
    let mark = live.delta_len();
    live.assert_fact(fact("road", 10));
    merged.merge(live.delta_since(mark));
    live.end_delta();

    // The doomed middle transaction: asserts, retracts a *pre-existing*
    // fact, wipes a group — then unwinds completely.
    live.begin_delta();
    let mark = live.delta_len();
    live.assert_clause_in(
        GroupId::named("tmp"),
        fact("bridge", 11),
        Term::atom("true"),
    );
    live.retract_fact(&fact("road", 10));
    live.retract_group(GroupId::named("tmp"));
    let undone = live.rollback_to(mark);
    assert!(undone >= 3, "rollback undid {undone} ops");
    live.end_delta();

    live.begin_delta();
    let mark = live.delta_len();
    live.assert_fact(fact("sensor", 12));
    merged.merge(live.delta_since(mark));
    live.end_delta();

    let mut replayed = base_kb();
    for op in merged.ops() {
        replayed.apply_op(op);
    }
    assert!(same_clauses(&replayed, &live));
    assert_eq!(all_answers(&replayed), all_answers(&live));
    // bridge(x11, 11) must not exist anywhere.
    assert!(!all_answers(&replayed).iter().any(|s| s.contains("x11")));
}
