//! SLG resolution regression and equivalence suite.
//!
//! The headline contract: recursive tabled predicates now get *real* SLG
//! evaluation (answer forest + fixpoint saturation) instead of a silent
//! SLD fallback, so left-recursive programs that loop to budget
//! exhaustion under plain SLD terminate with the correct least fixpoint
//! under tabling. The guard-rails: on non-recursive programs SLG is
//! observationally identical to plain SLD (solution multiset, order,
//! provability, counts — the PR 1 contract, re-proved against the new
//! engine), the remaining degradations to SLD are *counted* in
//! `SolverStats::table_fallbacks`, and everything composes with parallel
//! batches and injected faults.

use std::sync::Once;

use proptest::prelude::*;

use gdp::engine::{
    Budget, ChaosConfig, CyclePolicy, EngineError, KnowledgeBase, ParallelSolver, PredKey, Solver,
    Term,
};

/// Swallow the *expected* injected panics from the chaos leg so the run
/// doesn't spam stderr (same pattern as `chaos_harness.rs`); every other
/// panic still reaches the previous hook.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if message.contains("chaos: injected") {
                return;
            }
            previous(info);
        }));
    });
}

/// `reach(X,Y) :- reach(X,Z), edge(Z,Y).  reach(X,Y) :- edge(X,Y).`
///
/// The *left*-recursive formulation: the recursive literal comes first in
/// the first clause, so plain SLD re-enters `reach` forever before ever
/// consulting an `edge` fact.
fn left_recursive_kb(edges: &[(&str, &str)], tabled: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    kb.assert_clause(
        Term::pred("reach", vec![x.clone(), y.clone()]),
        Term::and(
            Term::pred("reach", vec![x.clone(), z.clone()]),
            Term::pred("edge", vec![z.clone(), y.clone()]),
        ),
    );
    kb.assert_clause(
        Term::pred("reach", vec![x.clone(), y.clone()]),
        Term::pred("edge", vec![x, y]),
    );
    for &(a, b) in edges {
        kb.assert_fact(Term::pred("edge", vec![Term::atom(a), Term::atom(b)]));
    }
    if tabled {
        kb.set_tabling(true);
        kb.mark_tabled(PredKey::new("reach", 2));
    }
    kb
}

/// Transitive closure of `edges` from `from`, computed in Rust — the
/// reference the engine's answers must match.
fn reference_closure(edges: &[(&str, &str)], from: &str) -> Vec<String> {
    let mut reached: Vec<String> = Vec::new();
    let mut frontier = vec![from.to_string()];
    while let Some(node) = frontier.pop() {
        for &(a, b) in edges {
            if a == node && !reached.iter().any(|r| r == b) {
                reached.push(b.to_string());
                frontier.push(b.to_string());
            }
        }
    }
    reached.sort();
    reached
}

/// The engine's answer set for `reach(from, X)`, sorted.
fn engine_closure(kb: &KnowledgeBase, from: &str, budget: Budget) -> Vec<String> {
    let solver = Solver::new(kb, budget);
    let mut out: Vec<String> = solver
        .solve_all(Term::pred("reach", vec![Term::atom(from), Term::var(0)]))
        .expect("reach query within budget")
        .iter()
        .map(|sol| {
            let (_, t) = &sol.bindings()[0];
            t.to_string()
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

const CHAIN: [(&str, &str); 6] = [
    ("a", "b"),
    ("b", "c"),
    ("c", "d"),
    ("d", "e"),
    ("a", "c"),
    ("b", "d"),
];

/// Seed behavior, preserved for untabled KBs: the left-recursive program
/// loops until the step budget dies.
#[test]
fn left_recursion_loops_to_budget_without_tabling() {
    let kb = left_recursive_kb(&CHAIN, false);
    let solver = Solver::new(&kb, Budget::new(50_000, 64));
    let err = solver
        .solve_all(Term::pred("reach", vec![Term::atom("a"), Term::var(0)]))
        .expect_err("plain SLD must not terminate on left recursion");
    assert!(
        matches!(err, EngineError::StepLimit { .. }),
        "expected step exhaustion, got {err:?}"
    );
}

/// The fix: the same program and budget terminate under SLG with exactly
/// the transitive closure, and nothing degraded to SLD along the way.
#[test]
fn left_recursion_terminates_under_slg() {
    let kb = left_recursive_kb(&CHAIN, true);
    let solver = Solver::new(&kb, Budget::new(50_000, 64));
    let mut answers: Vec<String> = solver
        .solve_all(Term::pred("reach", vec![Term::atom("a"), Term::var(0)]))
        .expect("SLG evaluation within budget")
        .iter()
        .map(|sol| sol.bindings()[0].1.to_string())
        .collect();
    answers.sort();
    answers.dedup();
    assert_eq!(answers, reference_closure(&CHAIN, "a"));
    let stats = solver.stats();
    assert_eq!(
        stats.table_fallbacks, 0,
        "left recursion must be resolved by SLG proper, not SLD fallback"
    );
    assert!(stats.table_inserts >= 1, "completed subgoals must publish");
}

/// A cyclic graph: the classic case where even *right*-recursive SLD
/// diverges. The inductive least fixpoint is still just "every node on a
/// path from the start".
#[test]
fn cyclic_graph_terminates_with_least_fixpoint() {
    let cyclic = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")];
    let kb = left_recursive_kb(&cyclic, true);
    assert_eq!(
        engine_closure(&kb, "a", Budget::new(100_000, 64)),
        reference_closure(&cyclic, "a"),
    );
    // Replay: a second query over the now-published tables agrees.
    assert_eq!(
        engine_closure(&kb, "a", Budget::new(100_000, 64)),
        reference_closure(&cyclic, "a"),
    );
}

/// Cycle policy: a self-supporting cycle with no base case fails under
/// the default inductive policy (least fixpoint: no derivation bottoms
/// out) and succeeds under a coinductive marking (the cycle is its own
/// evidence).
#[test]
fn inductive_cycle_fails_coinductive_succeeds() {
    let build = |coinductive: bool| {
        let mut kb = KnowledgeBase::new();
        kb.assert_clause(Term::pred("p", vec![Term::atom("k")]), {
            Term::pred("p", vec![Term::atom("k")])
        });
        kb.set_tabling(true);
        kb.mark_tabled(PredKey::new("p", 1));
        if coinductive {
            kb.mark_coinductive(PredKey::new("p", 1));
        }
        kb
    };
    let inductive = build(false);
    assert_eq!(inductive.cycle_policy(), CyclePolicy::Inductive);
    let solver = Solver::new(&inductive, Budget::new(10_000, 16));
    assert!(
        !solver
            .prove(Term::pred("p", vec![Term::atom("k")]))
            .expect("inductive cycle fails finitely"),
        "a cycle with no base case has an empty least fixpoint"
    );
    let coinductive = build(true);
    assert_eq!(
        coinductive.cycle_policy_of(PredKey::new("p", 1)),
        CyclePolicy::Coinductive
    );
    let solver = Solver::new(&coinductive, Budget::new(10_000, 16));
    assert!(
        solver
            .prove(Term::pred("p", vec![Term::atom("k")]))
            .expect("coinductive cycle succeeds finitely"),
        "a coinductive cycle is its own evidence"
    );
}

/// The KB-wide policy switch does the same without per-predicate marks,
/// and flipping it invalidates previously published answer sets.
#[test]
fn kb_wide_cycle_policy_switch() {
    let mut kb = KnowledgeBase::new();
    kb.assert_clause(Term::pred("q", vec![]), Term::pred("q", vec![]));
    kb.set_tabling(true);
    kb.mark_tabled(PredKey::new("q", 0));
    let goal = Term::pred("q", vec![]);
    assert!(!Solver::new(&kb, Budget::new(10_000, 16))
        .prove(goal.clone())
        .unwrap());
    kb.set_cycle_policy(CyclePolicy::Coinductive);
    assert!(
        Solver::new(&kb, Budget::new(10_000, 16))
            .prove(goal)
            .unwrap(),
        "policy change must not replay answers cached under the old policy"
    );
}

/// NAF over an *active* pattern is the one place SLG still degrades to
/// SLD (a negation must never observe a partial answer set). That
/// degradation is no longer silent: it lands in
/// `SolverStats::table_fallbacks`.
#[test]
fn naf_reentry_falls_back_and_is_counted() {
    let mut kb = KnowledgeBase::new();
    // r :- e.    r :- not(r).
    kb.assert_fact(Term::pred("e", vec![]));
    kb.assert_clause(Term::pred("r", vec![]), Term::pred("e", vec![]));
    kb.assert_clause(Term::pred("r", vec![]), Term::not(Term::pred("r", vec![])));
    kb.set_tabling(true);
    kb.mark_tabled(PredKey::new("r", 0));
    let solver = Solver::new(&kb, Budget::new(10_000, 16));
    assert!(solver.prove(Term::pred("r", vec![])).unwrap());
    assert!(
        solver.stats().table_fallbacks >= 1,
        "the NAF re-entry must be visible in the fallback counter"
    );
}

// ---------------------------------------------------------------------------
// SLG ≡ SLD on non-recursive programs (the PR 1 contract, re-proved).
// ---------------------------------------------------------------------------

const ATOMS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Random *acyclic* KB with the same rule pack as the PR 1 equivalence
/// suite: conjunction, disjunction, (terminating) recursion, NAF.
fn build_kb(unary: &[(u8, u8)], edges: &[(u8, u8)], tabled: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    for &(p, a) in unary {
        let name = if p == 0 { "p" } else { "q" };
        kb.assert_fact(Term::pred(
            name,
            vec![Term::atom(ATOMS[a as usize % ATOMS.len()])],
        ));
    }
    for &(a, b) in edges {
        let (a, b) = (a as usize % ATOMS.len(), b as usize % ATOMS.len());
        if a >= b {
            continue; // keep `e` acyclic so plain SLD terminates
        }
        kb.assert_fact(Term::pred(
            "e",
            vec![Term::atom(ATOMS[a]), Term::atom(ATOMS[b])],
        ));
    }
    // r(X) :- p(X), q(X).
    kb.assert_clause(
        Term::pred("r", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::pred("q", vec![x.clone()]),
        ),
    );
    // t(X, Y) :- e(X, Y) ; (e(X, Z), t(Z, Y)).
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z.clone(), y.clone()]),
            ),
        ),
    );
    // u(X) :- p(X), not(q(X)).
    kb.assert_clause(
        Term::pred("u", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::not(Term::pred("q", vec![x])),
        ),
    );
    if tabled {
        kb.set_tabling(true);
        kb.set_table_all(true);
    }
    kb
}

fn arb_goal() -> impl Strategy<Value = Term> {
    let atom = (0usize..ATOMS.len())
        .prop_map(|i| Term::atom(ATOMS[i]))
        .boxed();
    prop_oneof![
        Just(Term::pred("r", vec![Term::var(0)])),
        Just(Term::pred("u", vec![Term::var(0)])),
        atom.clone()
            .prop_map(|a| Term::pred("t", vec![a, Term::var(0)])),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| Term::not(Term::pred("t", vec![a, b]))),
        (atom.clone(), atom).prop_map(|(a, b)| Term::and(
            Term::pred("t", vec![a, Term::var(0)]),
            Term::not(Term::pred("e", vec![Term::var(0), b])),
        )),
    ]
}

/// Render one solution list *order-sensitively*: SLG must preserve the
/// exact SLD solution stream on non-recursive programs, duplicates and
/// all.
fn render_solutions(sols: &[gdp::engine::Solution]) -> Vec<String> {
    sols.iter()
        .map(|sol| {
            sol.bindings()
                .iter()
                .map(|(v, t)| format!("{v:?}={t}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

proptest! {
    /// Sequential twin run: for random acyclic programs and goals, the
    /// SLG engine's answers (stream order included) equal plain SLD's,
    /// both cold and replayed, at 1 and 4 parallel workers.
    #[test]
    fn slg_equals_sld_on_nonrecursive(
        unary in prop::collection::vec((0u8..2, 0u8..5), 0..12),
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        goals in prop::collection::vec(arb_goal(), 1..4),
    ) {
        let plain_kb = build_kb(&unary, &edges, false);
        let tabled_kb = build_kb(&unary, &edges, true);
        for goal in &goals {
            let plain = Solver::new(&plain_kb, Budget::default());
            let tabled = Solver::new(&tabled_kb, Budget::default());
            // Cold, then replayed from the table: both byte-identical.
            for pass in ["cold", "replay"] {
                prop_assert_eq!(
                    render_solutions(&plain.solve_all(goal.clone()).unwrap()),
                    render_solutions(&tabled.solve_all(goal.clone()).unwrap()),
                    "{} solution streams diverge on {}", pass, goal
                );
            }
            prop_assert_eq!(
                plain.count(goal.clone()).unwrap(),
                tabled.count(goal.clone()).unwrap()
            );
            prop_assert_eq!(
                tabled.stats().table_fallbacks, 0,
                "non-recursive programs must never fall back"
            );
        }
        // Parallel batches over the same goals agree at any worker count.
        let reference: Vec<_> = goals
            .iter()
            .map(|g| {
                render_solutions(
                    &Solver::new(&plain_kb, Budget::default())
                        .solve_all(g.clone())
                        .unwrap(),
                )
            })
            .collect();
        for workers in [1usize, 4] {
            let par = ParallelSolver::new(&tabled_kb, workers);
            let batch = par.solve_batch(&goals);
            let rendered: Vec<_> = batch
                .iter()
                .map(|r| render_solutions(r.as_ref().unwrap()))
                .collect();
            prop_assert_eq!(
                &rendered, &reference,
                "parallel SLG batch diverges at {} workers", workers
            );
        }
    }

    /// Fault injection composes with SLG: a chaos fault fired mid-
    /// evaluation never escapes as a panic, never poisons the shared
    /// table, and goals that complete anyway return exactly the
    /// fault-free answers.
    #[test]
    fn slg_survives_injected_faults(seed in 0u64..24) {
        quiet_injected_panics();
        let edges = [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")];
        let kb = left_recursive_kb(&edges, true);
        let goals: Vec<Term> = ["a", "b", "c"]
            .iter()
            .map(|s| Term::pred("reach", vec![Term::atom(s), Term::var(0)]))
            .collect();
        let fault_free: Vec<_> = goals
            .iter()
            .map(|g| {
                render_solutions(
                    &Solver::new(&kb, Budget::new(200_000, 64))
                        .solve_all(g.clone())
                        .unwrap(),
                )
            })
            .collect();
        let mut par = ParallelSolver::new(&kb, 2);
        par.set_chaos(Some(ChaosConfig::from_seed(seed)));
        for (i, result) in par.solve_batch(&goals).iter().enumerate() {
            match result {
                Ok(sols) => prop_assert_eq!(
                    &render_solutions(sols),
                    &fault_free[i],
                    "a goal that survived the fault must answer exactly"
                ),
                Err(e) => prop_assert!(
                    matches!(
                        e,
                        EngineError::Cancelled
                            | EngineError::DeadlineExceeded { .. }
                            | EngineError::GoalPanicked { .. }
                            | EngineError::StepLimit { .. }
                            | EngineError::DepthLimit { .. }
                    ),
                    "unexpected degradation: {:?}", e
                ),
            }
        }
        // Whatever the fault hit, the published tables stay sound.
        for (i, goal) in goals.iter().enumerate() {
            prop_assert_eq!(
                &render_solutions(
                    &Solver::new(&kb, Budget::new(200_000, 64))
                        .solve_all(goal.clone())
                        .unwrap()
                ),
                &fault_free[i],
                "table poisoned after injected fault"
            );
        }
    }
}
