//! gdp-serve hardening: admission control, timeouts, graceful drain.
//!
//! Each test boots an in-process server on an ephemeral TCP port with
//! explicit [`ServeOptions`] and drives it with raw `TcpStream` clients
//! that *tolerate* mid-stream closure — unlike the smoke suite, these
//! sessions are expected to be turned away, timed out, or drained.
//!
//! The drain test is the acceptance criterion of ISSUE 9: four
//! concurrent sessions stream commits while the server is told to shut
//! down, and afterwards the on-disk checkpoint + WAL family must
//! recover every commit a client saw acknowledged.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gdp::core::DurabilityOptions;
use gdp::prelude::FactPat;
use gdp::server::{serve_tcp_opts, ServeOptions, ServerState};

const PROMPT: &str = "gdp> ";

fn temp_wal(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("gdp-harden-{tag}-{}.wal", std::process::id()));
    p
}

fn remove_family(path: &Path) {
    for suffix in ["", ".prev", ".ckpt", ".ckpt.prev", ".ckpt.tmp"] {
        let mut os = path.as_os_str().to_os_string();
        os.push(suffix);
        let _ = std::fs::remove_file(PathBuf::from(os));
    }
}

/// Boot a server with explicit options; returns the accept loop's join
/// handle so drain tests can assert it exits cleanly.
fn boot(
    state: Arc<ServerState>,
    opts: ServeOptions,
) -> (SocketAddr, JoinHandle<std::io::Result<()>>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let accept_state = Arc::clone(&state);
    let handle = std::thread::spawn(move || serve_tcp_opts(accept_state, listener, opts));
    (addr, handle)
}

/// A protocol client that tolerates the server hanging up on it.
struct Client {
    stream: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client { stream }
    }

    /// Read until the next prompt. `None` = the connection ended first
    /// (EOF or reset), with whatever arrived discarded.
    fn read_to_prompt(&mut self) -> Option<String> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
            if buf.ends_with(PROMPT.as_bytes()) {
                buf.truncate(buf.len() - PROMPT.len());
                return Some(String::from_utf8_lossy(&buf).into_owned());
            }
        }
    }

    /// Send one line; `None` if the write or the reply failed.
    fn send(&mut self, input: &str) -> Option<String> {
        self.stream.write_all(input.as_bytes()).ok()?;
        self.stream.write_all(b"\n").ok()?;
        self.stream.flush().ok()?;
        self.read_to_prompt()
    }

    /// Drain the stream to EOF (rejected/closed sessions).
    fn read_to_eof(&mut self) -> String {
        let mut buf = String::new();
        let _ = self.stream.read_to_string(&mut buf);
        buf
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn admission_limit_turns_extra_sessions_away() {
    let state = ServerState::new().expect("state");
    let opts = ServeOptions {
        max_sessions: 1,
        ..ServeOptions::default()
    };
    let (addr, _handle) = boot(Arc::clone(&state), opts);

    let mut first = Client::connect(addr);
    assert!(first.read_to_prompt().is_some(), "first session rejected");

    // Second connection: a clean busy line, then hangup — no banner, no
    // half-open session.
    let mut second = Client::connect(addr);
    let reply = second.read_to_eof();
    assert!(
        reply.contains("server busy") && reply.contains("limit 1"),
        "unexpected rejection text: {reply}"
    );
    assert!(!reply.contains(PROMPT), "rejected session got a prompt");

    // The admitted session still works while the server is "full"...
    let reply = first.send("bridge(b1).").expect("admitted session died");
    assert!(reply.contains("committed as seq 1"), "{reply}");

    // ...and its slot frees on disconnect, re-admitting newcomers.
    drop(first);
    wait_until("slot release", || state.active_sessions() == 0);
    let mut third = Client::connect(addr);
    assert!(third.read_to_prompt().is_some(), "freed slot not reusable");
    let reply = third.send("?- bridge(X).").expect("third session died");
    assert!(reply.contains("X = b1"), "{reply}");
}

#[test]
fn idle_sessions_are_closed_after_the_timeout() {
    let state = ServerState::new().expect("state");
    let opts = ServeOptions {
        idle_timeout: Some(Duration::from_millis(200)),
        ..ServeOptions::default()
    };
    let (addr, _handle) = boot(Arc::clone(&state), opts);

    let mut c = Client::connect(addr);
    assert!(c.read_to_prompt().is_some());
    // Say nothing; the server must hang up with an explanation.
    let farewell = c.read_to_eof();
    assert!(farewell.contains("idle timeout"), "{farewell}");
    wait_until("session teardown", || state.active_sessions() == 0);

    // An active session is not an idle one: keep talking under the same
    // timeout and the connection stays.
    let mut busy = Client::connect(addr);
    assert!(busy.read_to_prompt().is_some());
    for i in 0..4 {
        std::thread::sleep(Duration::from_millis(100));
        let reply = busy
            .send(&format!("tick(t{i})."))
            .expect("busy session dropped");
        assert!(reply.contains("committed"), "{reply}");
    }
}

/// An abrupt client disconnect mid-session tears down only that session
/// (logged, not fatal): the accept loop and every other session keep
/// serving. Regression for the satellite fix — these errors used to be
/// silently dropped on the floor.
#[test]
fn lost_connection_tears_down_only_its_session() {
    let state = ServerState::new().expect("state");
    let (addr, _handle) = boot(Arc::clone(&state), ServeOptions::default());

    let mut survivor = Client::connect(addr);
    assert!(survivor.read_to_prompt().is_some());

    {
        let mut doomed = Client::connect(addr);
        assert!(doomed.read_to_prompt().is_some());
        // Fire a statement and vanish without reading the reply: the
        // unread data makes the close an RST on most stacks, so the
        // server's session hits a genuine connection error rather than
        // a tidy EOF. (Either way the session must die quietly.)
        doomed.stream.write_all(b"bridge(rst).\n").unwrap();
        doomed.stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(100));
    }
    wait_until("doomed session teardown", || state.active_sessions() <= 1);

    // The survivor and a newcomer are untouched.
    let reply = survivor.send("road(r1).").expect("survivor died");
    assert!(reply.contains("committed"), "{reply}");
    let mut fresh = Client::connect(addr);
    assert!(fresh.read_to_prompt().is_some());
    let reply = fresh.send("?- road(X).").expect("fresh session died");
    assert!(reply.contains("X = r1"), "{reply}");
}

#[test]
fn shutdown_command_drains_the_accept_loop() {
    let state = ServerState::new().expect("state");
    let (addr, handle) = boot(Arc::clone(&state), ServeOptions::default());

    let mut c = Client::connect(addr);
    assert!(c.read_to_prompt().is_some());
    c.send("bridge(b1).");
    // `:shutdown` answers, then the session and the accept loop wind
    // down; the accept thread must return cleanly.
    c.stream.write_all(b":shutdown\n").unwrap();
    c.stream.flush().unwrap();
    let farewell = c.read_to_eof();
    assert!(farewell.contains("draining"), "{farewell}");
    assert!(state.is_shutting_down());
    handle
        .join()
        .expect("accept thread panicked")
        .expect("accept loop errored");
}

/// The ISSUE 9 drain criterion: a durable server draining under four
/// concurrent committing sessions exits cleanly and loses *no commit any
/// client saw acknowledged* — the recovered head covers every
/// acknowledged sequence number and every acknowledged fact is present.
#[test]
fn drain_under_concurrent_commits_loses_no_acknowledged_commit() {
    let wal = temp_wal("drain");
    remove_family(&wal);
    let (state, head) =
        ServerState::durable_opts(&wal, DurabilityOptions::default(), &[]).expect("durable state");
    assert_eq!(head, 0);
    let (addr, handle) = boot(Arc::clone(&state), ServeOptions::default());

    // Four writers race: each commits facts mk(cK_I) until the server
    // hangs up on it, recording what was acknowledged.
    let writers: Vec<_> = (1..=4)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut acked: Vec<(String, u64)> = Vec::new();
                if c.read_to_prompt().is_none() {
                    return acked;
                }
                for i in 1..=50u32 {
                    let fact = format!("c{k}_{i}");
                    let Some(reply) = c.send(&format!("mk({fact}).")) else {
                        break; // drained mid-exchange: nothing acknowledged
                    };
                    let Some(seq) = parse_seq(&reply) else {
                        break; // "server draining" or an error: not an ack
                    };
                    acked.push((fact, seq));
                }
                acked
            })
        })
        .collect();

    // Let the writers get going, then pull the plug the way SIGTERM
    // does: a bare `request_shutdown`.
    std::thread::sleep(Duration::from_millis(150));
    state.request_shutdown();
    let acked: Vec<(String, u64)> = writers
        .into_iter()
        .flat_map(|w| w.join().expect("writer panicked"))
        .collect();
    handle
        .join()
        .expect("accept thread panicked")
        .expect("drain errored");
    drop(state);

    // The drain wrote a final checkpoint.
    let mut ckpt = wal.as_os_str().to_os_string();
    ckpt.push(".ckpt");
    assert!(
        PathBuf::from(ckpt).exists(),
        "drain left no final checkpoint"
    );

    // Recover from disk: every acknowledged commit must be there.
    let (state, head) =
        ServerState::durable_opts(&wal, DurabilityOptions::default(), &[]).expect("recovery");
    let max_acked = acked.iter().map(|(_, seq)| *seq).max().unwrap_or(0);
    assert!(
        head >= max_acked,
        "recovered head {head} behind acknowledged seq {max_acked}"
    );
    assert!(
        !acked.is_empty(),
        "no writer got a single ack before the drain — test proved nothing"
    );
    state.store().read(|spec| {
        for (fact, seq) in &acked {
            assert!(
                spec.provable(FactPat::new("mk").arg(fact.as_str()))
                    .unwrap(),
                "acknowledged commit {seq} (mk({fact})) lost across drain"
            );
        }
    });
    drop(state);
    remove_family(&wal);
}

/// The same drain criterion end-to-end through the real binary: spawn
/// `gdp-serve`, stream commits from four concurrent TCP sessions, send
/// SIGTERM, and require exit status 0, a final checkpoint on disk, and
/// a recovery containing every acknowledged commit. This is the only
/// test that exercises the actual signal-handler wiring in `serve.rs`.
#[cfg(unix)]
#[test]
fn sigterm_drains_the_real_binary_with_a_valid_checkpoint() {
    use std::process::{Command, Stdio};

    let wal = temp_wal("sigterm");
    remove_family(&wal);
    // Pick a free port, release it, and hand it to the child. (A tiny
    // reuse race, but the bind happens milliseconds later.)
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr")
    };
    let mut child = Command::new(env!("CARGO_BIN_EXE_gdp-serve"))
        .args([
            "--tcp",
            &addr.to_string(),
            "--wal",
            wal.to_str().expect("utf8 wal path"),
            "--checkpoint",
            "4",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gdp-serve");

    // Wait until the child is accepting (recovery + bind take a moment).
    let mut probe = None;
    let deadline = Instant::now() + Duration::from_secs(20);
    while probe.is_none() {
        assert!(Instant::now() < deadline, "gdp-serve never came up");
        match TcpStream::connect(addr) {
            Ok(stream) => probe = Some(stream),
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    drop(probe);

    let writers: Vec<_> = (1..=4)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut acked: Vec<(String, u64)> = Vec::new();
                if c.read_to_prompt().is_none() {
                    return acked;
                }
                for i in 1..=50u32 {
                    let fact = format!("s{k}_{i}");
                    let Some(reply) = c.send(&format!("mk({fact}).")) else {
                        break;
                    };
                    let Some(seq) = parse_seq(&reply) else {
                        break;
                    };
                    acked.push((fact, seq));
                }
                acked
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;
    assert_eq!(
        unsafe { kill(child.id() as i32, SIGTERM) },
        0,
        "kill failed"
    );

    let acked: Vec<(String, u64)> = writers
        .into_iter()
        .flat_map(|w| w.join().expect("writer panicked"))
        .collect();
    let status = child.wait().expect("wait on gdp-serve");
    assert!(status.success(), "gdp-serve exited {status} under SIGTERM");

    let mut ckpt = wal.as_os_str().to_os_string();
    ckpt.push(".ckpt");
    assert!(
        PathBuf::from(ckpt).exists(),
        "SIGTERM drain left no final checkpoint"
    );
    assert!(
        !acked.is_empty(),
        "no commit was acknowledged before SIGTERM"
    );

    // Recover over the same base the binary serves (the standard spec)
    // and hold it to the acknowledged prefix.
    let (state, head) =
        ServerState::durable_opts(&wal, DurabilityOptions::default(), &[]).expect("recovery");
    let max_acked = acked.iter().map(|(_, seq)| *seq).max().unwrap_or(0);
    assert!(
        head >= max_acked,
        "recovered head {head} behind acknowledged seq {max_acked}"
    );
    state.store().read(|spec| {
        for (fact, seq) in &acked {
            assert!(
                spec.provable(FactPat::new("mk").arg(fact.as_str()))
                    .unwrap(),
                "acknowledged commit {seq} (mk({fact})) lost across SIGTERM drain"
            );
        }
    });
    drop(state);
    remove_family(&wal);
}

/// "committed as seq N" → N.
fn parse_seq(reply: &str) -> Option<u64> {
    let tail = reply.split("committed as seq ").nth(1)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
