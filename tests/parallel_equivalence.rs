//! The parallel layer must be observationally equivalent to the sequential
//! solver: `ParallelSolver::solve_batch` returns exactly the sequential
//! solution multiset per goal (tabling off and on), the shared answer
//! table survives being hammered from many threads across epoch bumps,
//! and `Specification::audit_world_views` reproduces `check_consistency`
//! byte-for-byte on the specification corpus at any worker count.

use proptest::prelude::*;

use gdp::engine::{Budget, KnowledgeBase, ParallelSolver, Solver, Term};

const ATOMS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Same rule shapes as the tabling-equivalence suite: conjunction,
/// disjunction, recursion, and (ground / existential) negation.
fn install_rules(kb: &mut KnowledgeBase) {
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    kb.assert_clause(
        Term::pred("r", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::pred("q", vec![x.clone()]),
        ),
    );
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z.clone(), y.clone()]),
            ),
        ),
    );
    kb.assert_clause(
        Term::pred("u", vec![x.clone()]),
        Term::and(
            Term::pred("p", vec![x.clone()]),
            Term::not(Term::pred("q", vec![x])),
        ),
    );
}

fn build_kb(unary: &[(u8, u8)], edges: &[(u8, u8)], tabled: bool) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    for &(p, a) in unary {
        let name = if p == 0 { "p" } else { "q" };
        kb.assert_fact(Term::pred(
            name,
            vec![Term::atom(ATOMS[a as usize % ATOMS.len()])],
        ));
    }
    for &(a, b) in edges {
        let (a, b) = (a as usize % ATOMS.len(), b as usize % ATOMS.len());
        // Acyclic edges: `t/2` diverges on cycles under plain SLD.
        if a >= b {
            continue;
        }
        kb.assert_fact(Term::pred(
            "e",
            vec![Term::atom(ATOMS[a]), Term::atom(ATOMS[b])],
        ));
    }
    install_rules(&mut kb);
    if tabled {
        kb.set_tabling(true);
        kb.set_table_all(true);
    }
    kb
}

fn arb_goal() -> impl Strategy<Value = Term> {
    let atom = (0usize..ATOMS.len())
        .prop_map(|i| Term::atom(ATOMS[i]))
        .boxed();
    prop_oneof![
        Just(Term::pred("r", vec![Term::var(0)])),
        Just(Term::pred("u", vec![Term::var(0)])),
        atom.clone()
            .prop_map(|a| Term::pred("t", vec![a, Term::var(0)])),
        (atom.clone(), atom.clone()).prop_map(|(a, b)| Term::not(Term::pred("t", vec![a, b]))),
        atom.prop_map(|a| Term::absent(Term::pred("t", vec![a, Term::var(0)]))),
    ]
}

/// Render one goal's solution list; order *within* a goal is part of the
/// contract (work distribution is per goal, never within one).
fn fingerprint(result: &Result<Vec<gdp::engine::Solution>, gdp::engine::EngineError>) -> String {
    match result {
        Ok(sols) => sols
            .iter()
            .map(|sol| {
                sol.bindings()
                    .iter()
                    .map(|(v, t)| format!("{v:?}={t}"))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join(";"),
        Err(e) => format!("error: {e:?}"),
    }
}

proptest! {
    /// For random fact sets and goal batches, the parallel batch result is
    /// the sequential result, goal for goal — tabling off and on, at
    /// several worker counts.
    #[test]
    fn parallel_batch_equals_sequential(
        unary in prop::collection::vec((0u8..2, 0u8..5), 0..12),
        edges in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        goals in prop::collection::vec(arb_goal(), 1..6),
        workers in 1usize..5,
    ) {
        for tabled in [false, true] {
            let kb = build_kb(&unary, &edges, tabled);
            let sequential: Vec<String> = goals
                .iter()
                .map(|g| {
                    fingerprint(&Solver::new(&kb, Budget::default()).solve_all(g.clone()))
                })
                .collect();
            let par = ParallelSolver::new(&kb, workers);
            let batch: Vec<String> = par.solve_batch(&goals).iter().map(fingerprint).collect();
            prop_assert_eq!(
                &batch, &sequential,
                "divergence at {} workers, tabled={}", workers, tabled
            );
            // Replay over the (possibly) warm table must not change answers.
            let replay: Vec<String> = par.solve_batch(&goals).iter().map(fingerprint).collect();
            prop_assert_eq!(&replay, &sequential, "replay divergence, tabled={}", tabled);
        }
    }
}

/// Eight workers hammering one shared answer table while the KB epoch is
/// bumped between (not during — solving borrows the base immutably)
/// rounds: every round must see answers consistent with the current
/// epoch's facts, and stale entries must never be replayed.
#[test]
fn shared_table_across_epoch_bumps() {
    let mut kb = build_kb(&[(0, 0), (1, 0)], &[(0, 1), (1, 2)], true);
    let goals: Vec<Term> = (0..32)
        .map(|i| Term::pred("t", vec![Term::atom(ATOMS[i % 3]), Term::var(0)]))
        .collect();
    for round in 0u8..6 {
        // Mutate: extend the edge relation, bumping the epoch and
        // invalidating every cached answer set.
        let epoch_before = kb.epoch();
        kb.assert_fact(Term::pred(
            "e",
            vec![
                Term::atom(ATOMS[(round as usize) % 4]),
                Term::atom(ATOMS[4]),
            ],
        ));
        assert!(kb.epoch() > epoch_before, "assert must bump the epoch");
        // Solve the whole batch on 8 workers sharing the one table.
        let par = ParallelSolver::new(&kb, 8);
        let batch = par.solve_batch(&goals);
        let sequential: Vec<String> = goals
            .iter()
            .map(|g| fingerprint(&Solver::new(&kb, Budget::default()).solve_all(g.clone())))
            .collect();
        let rendered: Vec<String> = batch.iter().map(fingerprint).collect();
        assert_eq!(rendered, sequential, "divergence in round {round}");
    }
    assert!(
        kb.table().stats().invalidations > 0,
        "epoch bumps must have invalidated stale entries"
    );
}

/// Raw concurrent hammering of one `AnswerTable`: 8 threads look up and
/// insert the same call patterns under racing epoch-only validity
/// snapshots; the table must only ever serve an answer set recorded at the
/// exact requested epoch (epoch-only snapshots never survive a mismatch).
#[test]
fn answer_table_concurrent_lookups_respect_epochs() {
    use gdp::engine::table::{canonicalize, AnswerTable, CachedAnswer, Lookup, TableValidity};

    let table = AnswerTable::new();
    let patterns: Vec<_> = (0..4)
        .map(|i| canonicalize(&Term::pred("t", vec![Term::atom(ATOMS[i]), Term::var(0)])).0)
        .collect();
    std::thread::scope(|scope| {
        for w in 0..8u64 {
            let (table, patterns) = (&table, &patterns);
            scope.spawn(move || {
                for step in 0..200u64 {
                    let epoch = (w + step) % 5;
                    let pattern = &patterns[(step as usize) % patterns.len()];
                    match table.lookup(pattern, &TableValidity::epoch_only(epoch)) {
                        Lookup::Hit(answers) => {
                            // An answer set is tagged with the epoch that
                            // recorded it: every served answer must carry
                            // the marker fact for that epoch.
                            let marker = Term::pred("epoch", vec![Term::int(epoch as i64)]);
                            assert!(
                                answers.iter().all(|a| a.term == marker),
                                "stale answers served at epoch {epoch}"
                            );
                        }
                        Lookup::Miss { .. } => {
                            table.insert(
                                pattern.clone(),
                                TableValidity::epoch_only(epoch),
                                std::sync::Arc::new(vec![CachedAnswer {
                                    term: Term::pred("epoch", vec![Term::int(epoch as i64)]),
                                    n_vars: 0,
                                }]),
                            );
                        }
                    }
                }
            });
        }
    });
    let stats = table.stats();
    assert!(stats.inserts > 0);
    assert!(stats.hits + stats.misses > 0);
}

/// Acceptance criterion: on every corpus specification, the 4-worker audit
/// report is byte-identical (same violations, same order, same rendering)
/// to the sequential `check_consistency`, and worker counts do not change
/// the report.
#[test]
fn corpus_audit_matches_sequential_audit() {
    let dir = ["specs", "../../specs"]
        .into_iter()
        .map(std::path::PathBuf::from)
        .find(|p| p.is_dir())
        .expect("specs/ directory not found");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read specs/") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("gdp") {
            continue;
        }
        let source = std::fs::read_to_string(&path).expect("read spec");
        let (mut spec, reg) = gdp::standard_spec().expect("standard spec");
        gdp::lang::Loader::with_spatial(&mut spec, &reg)
            .load_str(&source)
            .unwrap_or_else(|e| panic!("{} failed to load: {e}", path.display()));
        let sequential: Vec<String> = spec
            .check_consistency()
            .expect("sequential audit")
            .iter()
            .map(|v| v.to_string())
            .collect();
        for workers in [1, 2, 4, 8] {
            let report = spec.audit_world_views(workers).expect("parallel audit");
            let parallel: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
            assert_eq!(
                parallel,
                sequential,
                "{}: audit diverges at {workers} workers",
                path.display()
            );
            assert_eq!(report.per_model.len(), spec.world_view().len());
            assert_eq!(
                report.per_model.iter().map(|(_, n)| n).sum::<usize>(),
                report.violations.len()
            );
        }
        checked += 1;
    }
    assert!(checked >= 4, "expected the full corpus, audited {checked}");
}

/// The audit is world-view relative, exactly like `check_consistency`
/// (§III.E: "a constraint violation may occur in one world view but not
/// in the other") — and the merged stats land in `solver_stats`.
#[test]
fn audit_respects_world_view_and_records_stats() {
    use gdp::core::{Constraint, FactPat, Formula, Pat};

    let mut spec = gdp::core::Specification::new();
    spec.declare_model("survey");
    spec.assert_fact(FactPat::new("wet").arg("cell1")).unwrap();
    spec.assert_fact(FactPat::new("dry").arg("cell1").model("survey"))
        .unwrap();
    spec.constrain(
        Constraint::new("contradiction")
            .witness(Pat::var("C"))
            .when(Formula::and(
                Formula::fact(FactPat::new("wet").arg(Pat::var("C"))),
                Formula::fact(FactPat::new("dry").arg(Pat::var("C"))),
            )),
    )
    .unwrap();
    // Default world view: survey's `dry` is invisible — consistent.
    let report = spec.audit_world_views(4).unwrap();
    assert!(report.violations.is_empty());
    assert!(report.stats.steps > 0, "merged stats must be recorded");
    assert_eq!(spec.solver_stats(), report.stats);
    // Widen the view: the contradiction becomes derivable.
    spec.set_world_view(&["omega", "survey"]).unwrap();
    let report = spec.audit_world_views(4).unwrap();
    assert_eq!(report.violations.len(), 1);
    assert_eq!(
        report.violations,
        spec.check_consistency().unwrap(),
        "audit and sequential check must agree"
    );
}
