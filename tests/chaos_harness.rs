//! Deterministic fault-injection harness for the fault-tolerance layer.
//!
//! The contract under test: injected faults — cooperative cancellation,
//! forced deadline expiry, and outright panics, all fired at a
//! seed-derived port-event index via `ChaosSink` — never escape the
//! public API as panics, and a degraded `audit_world_views` report equals
//! the fault-free audit *restricted to the world-view members that
//! completed*. Plus the `GDP_CHAOS` environment hook, deadline and
//! cross-thread cancellation smoke tests, answer-table integrity when the
//! fault lands on a `TableInsert` event, and per-goal panic isolation
//! with exact profiler/stats reconciliation on an 8-goal batch.

use std::sync::Once;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use gdp::core::{AuditReport, Constraint, FactPat, Formula, Rule, Specification, Violation};
use gdp::engine::{
    Budget, ChaosConfig, EngineError, FaultKind, KnowledgeBase, ParallelSolver, Port, Solver, Term,
};

/// Install (once, process-wide) a panic hook that swallows the *expected*
/// injected panics so intentionally-faulting tests don't spam stderr,
/// delegating every other panic to the previous hook. Permanent because
/// the test runner is multi-threaded: swapping hooks back would race.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if message.contains("chaos: injected") || message.contains("native exploded") {
                return;
            }
            previous(info);
        }));
    });
}

/// A three-member world view with per-member constraints and enough
/// derivation work (an acyclic reachability join) that audits emit a
/// healthy stream of port events for the chaos clock to count.
fn populate(spec: &mut Specification, tabled: bool) {
    spec.declare_model("survey");
    spec.declare_model("rumor");
    for (a, b) in [
        ("a", "b"),
        ("b", "c"),
        ("c", "d"),
        ("d", "e"),
        ("a", "c"),
        ("b", "d"),
    ] {
        spec.assert_fact(FactPat::new("edge").arg(a).arg(b))
            .unwrap();
    }
    spec.assert_fact(FactPat::new("wet").arg("c1")).unwrap();
    spec.assert_fact(FactPat::new("wet").arg("c2")).unwrap();
    spec.assert_fact(FactPat::new("dry").arg("c1").model("survey"))
        .unwrap();
    spec.assert_fact(FactPat::new("dry").arg("c2").model("rumor"))
        .unwrap();
    spec.define(Rule::new(
        FactPat::new("reach").arg("X").arg("Y"),
        Formula::or(
            Formula::fact(FactPat::new("edge").arg("X").arg("Y")),
            Formula::and(
                Formula::fact(FactPat::new("edge").arg("X").arg("Z")),
                Formula::fact(FactPat::new("reach").arg("Z").arg("Y")),
            ),
        ),
    ))
    .unwrap();
    spec.constrain(
        Constraint::new("linked")
            .witness("X")
            .witness("Y")
            .when(Formula::fact(FactPat::new("reach").arg("X").arg("Y"))),
    )
    .unwrap();
    spec.constrain(
        Constraint::new("contradiction")
            .model("survey")
            .witness("C")
            .when(Formula::and(
                Formula::fact(FactPat::new("wet").arg("C")),
                Formula::fact(FactPat::new("dry").arg("C")),
            )),
    )
    .unwrap();
    spec.constrain(
        Constraint::new("hearsay")
            .model("rumor")
            .witness("C")
            .when(Formula::and(
                Formula::fact(FactPat::new("wet").arg("C")),
                Formula::fact(FactPat::new("dry").arg("C")),
            )),
    )
    .unwrap();
    spec.set_world_view(&["omega", "survey", "rumor"]).unwrap();
    if tabled {
        spec.enable_tabling(true);
        spec.set_table_all(true);
    }
}

/// [`populate`]d specification with fault injection explicitly *off*,
/// regardless of any `GDP_CHAOS` in the environment (the env test in this
/// binary sets it transiently; every other test must be immune).
fn harness_spec(tabled: bool) -> Specification {
    let mut spec = Specification::new();
    spec.set_chaos(None);
    populate(&mut spec, tabled);
    spec
}

/// The fault-free audit restricted to the members the degraded `report`
/// actually completed: concatenate each completed member's sequential
/// per-model violation list in world-view order, deduplicating globally —
/// exactly the merge `audit_world_views` performs.
fn restricted_baseline(spec: &Specification, report: &AuditReport) -> Vec<Violation> {
    let mut expected: Vec<Violation> = Vec::new();
    for (name, _) in &report.per_model {
        if report.incomplete.iter().any(|f| &f.model == name) {
            continue;
        }
        for v in spec
            .violations_for_model(name)
            .expect("fault-free per-model baseline")
        {
            if !expected.contains(&v) {
                expected.push(v);
            }
        }
    }
    expected
}

proptest! {
    /// The tentpole property: for every seed-derived injection point
    /// (cycling cancel / deadline / panic at event indices 1..=499), at 1
    /// and 4 workers, tabling off and on, the audit API returns normally
    /// and its degraded report is the fault-free audit restricted to the
    /// non-skipped members. Injected faults are externally imposed, so
    /// the retry policy must not have burned attempts on them.
    #[test]
    fn degraded_audit_restricts_the_fault_free_audit(
        seed in 0u64..1500,
        four_workers in prop::bool::ANY,
        tabled in prop::bool::ANY,
    ) {
        quiet_injected_panics();
        let workers = if four_workers { 4 } else { 1 };
        let cfg = ChaosConfig::from_seed(seed);
        let mut spec = harness_spec(tabled);
        spec.set_chaos(Some(cfg));
        let report = spec
            .audit_world_views(workers)
            .expect("the audit API must not fail under injection");
        spec.set_chaos(None);
        for f in &report.incomplete {
            prop_assert_eq!(f.attempts, 0, "chaos fault retried: {:?}", f.error);
            prop_assert!(
                !f.error.is_recoverable(),
                "chaos fault classified recoverable: {:?}",
                f.error
            );
        }
        let expected = restricted_baseline(&spec, &report);
        prop_assert_eq!(
            &report.violations, &expected,
            "seed {} ({:?}) at {} workers, tabled={}",
            seed, cfg, workers, tabled
        );
    }
}

/// The test `ci.sh`'s chaos legs drive: the specification keeps whatever
/// fault `GDP_CHAOS` configured at construction (unlike every other test
/// here, which immunizes itself), runs audits under it at both worker
/// counts, and re-checks the restriction property. With no ambient
/// `GDP_CHAOS` this degenerates to a fault-free completeness check.
/// (The config is *captured*, not re-asserted against the environment —
/// another test in this binary sets `GDP_CHAOS` transiently, and any
/// injection point satisfies the property.)
#[test]
fn ambient_env_chaos_restriction_holds() {
    quiet_injected_panics();
    for tabled in [false, true] {
        let mut spec = Specification::new();
        let cfg = spec.chaos();
        populate(&mut spec, tabled);
        for workers in [1, 4] {
            spec.set_chaos(cfg);
            let report = spec.audit_world_views(workers).unwrap();
            spec.set_chaos(None);
            assert_eq!(
                report.violations,
                restricted_baseline(&spec, &report),
                "restriction violated under GDP_CHAOS={cfg:?} at {workers} workers, tabled={tabled}"
            );
            if cfg.is_none() {
                assert!(report.is_complete());
            }
        }
    }
}

/// The incremental leg `ci.sh` drives: under ambient `GDP_CHAOS`, the
/// delta-driven `audit_incremental` keeps the restriction property — its
/// degraded report is the fault-free audit restricted to the members that
/// completed (cached members completed by construction; injected faults
/// can only land on the re-solved stale ones). With no ambient fault it
/// must be byte-identical to the full re-audit.
#[test]
fn ambient_env_chaos_restriction_holds_incrementally() {
    quiet_injected_panics();
    for tabled in [false, true] {
        let mut spec = Specification::new();
        let cfg = spec.chaos();
        populate(&mut spec, tabled);
        spec.set_incremental(true);
        for workers in [1, 4] {
            // Seed the member cache fault-free, then dirty one member
            // inside a transaction.
            spec.set_chaos(None);
            spec.audit_world_views(workers).unwrap();
            spec.begin_txn().unwrap();
            spec.assert_fact(FactPat::new("dry").arg("c3").model("survey"))
                .unwrap();
            let delta = spec.commit_txn().unwrap();
            spec.set_chaos(cfg);
            let report = spec.audit_incremental(&delta, workers).unwrap();
            spec.set_chaos(None);
            assert_eq!(
                report.violations,
                restricted_baseline(&spec, &report),
                "incremental restriction violated under GDP_CHAOS={cfg:?} at {workers} \
                 workers, tabled={tabled}"
            );
            if cfg.is_none() {
                assert!(report.is_complete());
                let full = spec.audit_world_views(workers).unwrap();
                assert_eq!(report.violations, full.violations);
                assert_eq!(report.per_model, full.per_model);
            }
            spec.retract_fact(FactPat::new("dry").arg("c3").model("survey"))
                .unwrap();
        }
    }
}

/// `GDP_CHAOS` is read at `Specification` construction: a `panic:K` value
/// must surface as contained `GoalPanicked` audit failures, never as a
/// panic across the public API.
#[test]
fn env_chaos_hook_is_honored_and_never_panics() {
    quiet_injected_panics();
    std::env::set_var("GDP_CHAOS", "panic:5");
    let mut spec = Specification::new();
    std::env::remove_var("GDP_CHAOS");
    populate(&mut spec, false);
    assert_eq!(
        spec.chaos(),
        Some(ChaosConfig {
            kind: FaultKind::Panic,
            at_event: 5,
            port: None,
        })
    );
    let report = spec.audit_world_views(2).unwrap();
    assert!(
        report
            .incomplete
            .iter()
            .any(|f| matches!(f.error, EngineError::GoalPanicked { .. })),
        "the injected panic should have degraded at least one member: {report:?}"
    );
    // The restriction property holds for the env-configured point too.
    spec.set_chaos(None);
    assert_eq!(report.violations, restricted_baseline(&spec, &report));
}

/// With a divergent member (`spin'loop`), only a resource bound can end
/// the audit; a wall-clock deadline must end it promptly, degrade exactly
/// that member, and leave the rest of the report intact.
#[test]
fn deadline_bounds_a_divergent_audit_member() {
    let mut spec = harness_spec(false);
    spec.declare_model("spin");
    spec.assert_fact(FactPat::new("marker").arg("m").model("spin"))
        .unwrap();
    spec.define(Rule::new(
        FactPat::new("loop").arg("k"),
        Formula::fact(FactPat::new("loop").arg("k")),
    ))
    .unwrap();
    spec.constrain(
        Constraint::new("diverges")
            .model("spin")
            .when(Formula::fact(FactPat::new("loop").arg("k"))),
    )
    .unwrap();
    spec.set_world_view(&["omega", "survey", "rumor", "spin"])
        .unwrap();
    spec.set_budget(u64::MAX, 64);
    spec.set_deadline(Some(Duration::from_millis(30)));
    let started = Instant::now();
    let report = spec.audit_world_views(2).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "deadline failed to bound the divergent audit"
    );
    assert!(report
        .incomplete
        .iter()
        .any(|f| { f.model == "spin" && matches!(f.error, EngineError::DeadlineExceeded { .. }) }));
    // The completed members still reported (the deadline may or may not
    // have caught the cheap goals; whatever completed must be correct).
    spec.set_deadline(None);
    spec.set_budget(10_000_000, 64);
    assert_eq!(report.violations, restricted_baseline(&spec, &report));
}

/// Tripping the session token from another thread cancels the in-flight
/// audit; after `reset` the same session answers queries again.
#[test]
fn cross_thread_cancel_leaves_the_session_usable() {
    let mut spec = harness_spec(false);
    spec.declare_model("spin");
    spec.assert_fact(FactPat::new("marker").arg("m").model("spin"))
        .unwrap();
    spec.define(Rule::new(
        FactPat::new("loop").arg("k"),
        Formula::fact(FactPat::new("loop").arg("k")),
    ))
    .unwrap();
    spec.constrain(
        Constraint::new("diverges")
            .model("spin")
            .when(Formula::fact(FactPat::new("loop").arg("k"))),
    )
    .unwrap();
    spec.set_world_view(&["omega", "spin"]).unwrap();
    spec.set_budget(u64::MAX, 64);
    let token = spec.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
    });
    let report = spec.audit_world_views(2).unwrap();
    canceller.join().unwrap();
    assert!(
        report
            .incomplete
            .iter()
            .any(|f| matches!(f.error, EngineError::Cancelled)),
        "the divergent member should have been cancelled: {report:?}"
    );
    // Rearm and keep working with the same session and knowledge base.
    spec.cancel_token().reset();
    assert!(spec
        .provable(FactPat::new("edge").arg("a").arg("b"))
        .unwrap());
    assert!(spec
        .provable(FactPat::new("reach").arg("a").arg("e"))
        .unwrap());
}

/// Faults landing exactly on answer-table insertions (port-filtered chaos
/// clock) must not corrupt the shared table: a fresh fault-free audit over
/// the same knowledge base reproduces the clean baseline, for every fault
/// kind.
#[test]
fn table_insert_fault_preserves_answer_table_integrity() {
    quiet_injected_panics();
    let baseline = {
        let spec = harness_spec(true);
        let report = spec.audit_world_views(2).unwrap();
        assert!(report.is_complete());
        assert!(
            spec.table_stats().inserts > 0,
            "workload must exercise TableInsert events for this test to bite"
        );
        report
    };
    for kind in [FaultKind::Cancel, FaultKind::Deadline, FaultKind::Panic] {
        for at_event in [1, 2, 5] {
            let mut spec = harness_spec(true);
            spec.set_chaos(Some(ChaosConfig {
                kind,
                at_event,
                port: Some(Port::TableInsert),
            }));
            let degraded = spec.audit_world_views(2).unwrap();
            spec.set_chaos(None);
            assert_eq!(
                degraded.violations,
                restricted_baseline(&spec, &degraded),
                "restriction violated for {kind:?} at table-insert {at_event}"
            );
            // The table the faulted audit left behind still serves a
            // complete, correct audit.
            let after = spec.audit_world_views(2).unwrap();
            assert!(after.is_complete(), "{kind:?}@{at_event}: {after:?}");
            assert_eq!(
                after.violations, baseline.violations,
                "stale or torn table state after {kind:?} at table-insert {at_event}"
            );
        }
    }
}

/// Acceptance criterion: in an 8-goal batch where one goal's native
/// predicate panics, exactly that goal fails, the other seven complete
/// with the sequential answers, and the merged profiler total still
/// reconciles with the merged step counter.
#[test]
fn eight_goal_batch_isolates_a_panicking_worker() {
    quiet_injected_panics();
    let mut kb = KnowledgeBase::new();
    let atoms = ["a", "b", "c", "d", "e", "f", "g"];
    for w in atoms.windows(2) {
        kb.assert_fact(Term::pred("e", vec![Term::atom(w[0]), Term::atom(w[1])]));
    }
    let (x, y, z) = (Term::var(0), Term::var(1), Term::var(2));
    kb.assert_clause(
        Term::pred("t", vec![x.clone(), y.clone()]),
        Term::or(
            Term::pred("e", vec![x.clone(), y.clone()]),
            Term::and(
                Term::pred("e", vec![x.clone(), z.clone()]),
                Term::pred("t", vec![z, y]),
            ),
        ),
    );
    kb.register_native("boom", 0, |_, _| panic!("native exploded"));
    let mut goals: Vec<Term> = atoms
        .iter()
        .map(|a| Term::pred("t", vec![Term::atom(a), Term::var(0)]))
        .collect();
    goals.insert(3, Term::pred("boom", vec![]));
    assert_eq!(goals.len(), 8);
    let expected: Vec<_> = goals
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 3)
        .map(|(_, g)| {
            Solver::new(&kb, Budget::default())
                .solve_all(g.clone())
                .unwrap()
        })
        .collect();
    for workers in [1, 4] {
        let mut par = ParallelSolver::new(&kb, workers);
        par.enable_profile();
        let results = par.solve_batch(&goals);
        assert_eq!(results.len(), 8);
        match &results[3] {
            Err(EngineError::GoalPanicked { message }) => {
                assert!(message.contains("native exploded"))
            }
            other => panic!("expected GoalPanicked for goal 3, got {other:?}"),
        }
        let survivors: Vec<_> = results
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3)
            .map(|(_, r)| r.as_ref().unwrap().clone())
            .collect();
        assert_eq!(
            survivors, expected,
            "survivor goals perturbed at {workers} workers"
        );
        let profile = par.profile().expect("profiling was enabled");
        assert_eq!(
            profile.total_steps(),
            par.stats().steps,
            "profiler/stats ledger split at {workers} workers"
        );
    }
}
