//! World-view and meta-view integration: multiple models and multiple
//! meta-models interacting in one specification — the paper's central
//! "multiple views of data and knowledge may coexist in the same
//! formalization" claim.

use gdp::fuzzy::{threshold_model, unified_fuzzy, UnifyPolicy};
use gdp::lang::load;
use gdp::prelude::*;

/// Three data models (1962 survey, 1984 survey, planning assumptions);
/// queries and consistency are relative to the selected world view.
#[test]
fn multi_model_reinterpretation() {
    let mut spec = Specification::new();
    load(
        &mut spec,
        r#"
        // The same terrain, surveyed twice ("data reinterpretation that
        // occurs with the passage of time", §III.D).
        survey62'landuse(farmland)(parcel9).
        survey84'landuse(suburb)(parcel9).
        planning'zoned(residential)(parcel9).

        constraint farm_in_suburb(P) :-
            landuse(farmland)(P), zoned(residential)(P).
        "#,
    )
    .unwrap();

    // Each survey alone is consistent with the plan or not:
    spec.set_world_view(&["omega", "survey62", "planning"])
        .unwrap();
    assert_eq!(spec.check_consistency().unwrap().len(), 1);
    spec.set_world_view(&["omega", "survey84", "planning"])
        .unwrap();
    assert!(spec.check_consistency().unwrap().is_empty());

    // Queries see exactly the active models' facts.
    spec.set_world_view(&["omega", "survey62"]).unwrap();
    assert!(spec
        .provable(FactPat::new("landuse").arg("farmland").arg("parcel9"))
        .unwrap());
    assert!(!spec
        .provable(FactPat::new("landuse").arg("suburb").arg("parcel9"))
        .unwrap());
}

/// Rules read through the world view too: a virtual fact derived from a
/// model-qualified premise appears and disappears with the model.
#[test]
fn virtual_facts_follow_world_view() {
    let mut spec = Specification::new();
    load(
        &mut spec,
        r#"
        field'damaged(bridge1).
        unusable(X) :- damaged(X).
        "#,
    )
    .unwrap();
    assert!(!spec
        .provable(FactPat::new("unusable").arg("bridge1"))
        .unwrap());
    spec.set_world_view(&["omega", "field"]).unwrap();
    assert!(spec
        .provable(FactPat::new("unusable").arg("bridge1"))
        .unwrap());
    spec.set_world_view(&["omega"]).unwrap();
    assert!(!spec
        .provable(FactPat::new("unusable").arg("bridge1"))
        .unwrap());
}

/// Meta-models compose: threshold promotion (fuzzy) feeding the temporal
/// comprehension principle, each independently activatable.
#[test]
fn meta_models_compose_across_domains() {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    spec.declare_model("trusted");
    spec.register_meta_model(threshold_model("trust80", "trusted", 0.8));

    // A trusted sighting at 1975 (fuzzy, promoted) should — under the
    // comprehension principle — make the decade "uniformly" true.
    spec.assert_fuzzy_fact(
        FactPat::new("sighted")
            .arg("eagle")
            .time(TimeQual::At(Pat::Int(1975))),
        0.9,
    )
    .unwrap();
    let decade = FactPat::new("sighted")
        .arg("eagle")
        .time(TimeQual::IntervalUniform(IntervalPat::closed(1970, 1980)));

    // Nothing active: not provable.
    assert!(!spec.provable(decade.clone()).unwrap());
    // Promotion alone: the instant fact exists but not the interval.
    spec.activate_meta_model("trust80").unwrap();
    spec.set_world_view(&["omega", "trusted"]).unwrap();
    assert!(!spec.provable(decade.clone()).unwrap());
    // Comprehension on top: now the interval holds.
    spec.activate_meta_model("comprehension_principle").unwrap();
    assert!(spec.provable(decade.clone()).unwrap());
    // Deactivate promotion: the chain collapses.
    spec.deactivate_meta_model("trust80").unwrap();
    assert!(!spec.provable(decade).unwrap());
}

/// The meta-view is inspectable and replaceable wholesale (§IV.D).
#[test]
fn meta_view_wholesale_replacement() {
    let mut spec = Specification::new();
    gdp::temporal::install_default(&mut spec).unwrap();
    let initial: Vec<String> = spec.meta_view().to_vec();
    assert!(initial.contains(&"temporal_uniform".to_string()));
    spec.set_meta_view(&["temporal_simple", "now_model"])
        .unwrap();
    assert_eq!(spec.meta_view().len(), 2);
    // temporal_uniform rules are gone: interval facts no longer spread.
    load(&mut spec, "&u[1970, 1980] open(b1).").unwrap();
    assert!(!spec
        .provable(
            FactPat::new("open")
                .arg("b1")
                .time(TimeQual::At(Pat::Int(1975)))
        )
        .unwrap());
    spec.set_meta_view(&["temporal_simple", "now_model", "temporal_uniform"])
        .unwrap();
    assert!(spec
        .provable(
            FactPat::new("open")
                .arg("b1")
                .time(TimeQual::At(Pat::Int(1975)))
        )
        .unwrap());
}

/// Unknown names are reported, not silently ignored.
#[test]
fn unknown_view_members_error() {
    let mut spec = Specification::new();
    assert!(matches!(
        spec.set_world_view(&["omega", "never_declared"]),
        Err(SpecError::UnknownModel(_))
    ));
    assert!(matches!(
        spec.activate_meta_model("never_registered"),
        Err(SpecError::UnknownMetaModel(_))
    ));
}

/// Conflicting accuracy qualifications from different models: the unified
/// operator sees only the active world view's qualifications.
#[test]
fn unified_accuracy_is_world_view_relative() {
    let mut spec = Specification::new();
    spec.register_meta_model(unified_fuzzy(UnifyPolicy::Max));
    spec.activate_meta_model("unified_fuzzy_max").unwrap();
    spec.assert_fuzzy_fact(FactPat::new("clear").arg("pass"), 0.4)
        .unwrap();
    spec.assert_fuzzy_fact(FactPat::new("clear").arg("pass").model("optimists"), 0.95)
        .unwrap();
    let unified = |spec: &Specification| -> Option<f64> {
        let answers = spec
            .solve_goal(Term::pred(
                "unified_acc",
                vec![
                    Term::atom("any"),
                    Term::atom("any"),
                    Term::atom("clear"),
                    Term::list(vec![Term::atom("pass")]),
                    Term::var(0),
                ],
            ))
            .unwrap();
        answers
            .first()
            .and_then(|s| s.get(gdp::engine::Var(0)).and_then(Term::as_f64))
    };
    assert_eq!(unified(&spec), Some(0.4));
    spec.set_world_view(&["omega", "optimists"]).unwrap();
    assert_eq!(unified(&spec), Some(0.95));
}
