//! Ocean survey: accuracy qualification end to end (§VII). Sparse noisy
//! soundings become fuzzy facts; interpolated depths get computed
//! accuracies; picture clarity is defined statistically through `card`;
//! threshold meta-models promote trusted facts into a mission model; and
//! the AC evaluator propagates accuracy through a navigability rule.
//!
//! Run with: `cargo run -p gdp --example ocean_survey`

use gdp::datagen::{DepthSurvey, SurveyConfig, Terrain, TerrainConfig};
use gdp::fuzzy::ac::{derive_accuracies, AcOptions};
use gdp::fuzzy::{fuzzy_violations, threshold_model, unified_fuzzy, UnifyPolicy};
use gdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let terrain = Terrain::generate(TerrainConfig {
        seed: 3,
        water_level: 0.55,
        ..TerrainConfig::default()
    });
    let survey = DepthSurvey::generate(&terrain, SurveyConfig::default());
    println!("survey: {} soundings", survey.samples.len());

    let mut spec = Specification::new();

    // ----- §VII.B: uncertainty from measurement ------------------------------
    // Each sounding is a fuzzy fact whose accuracy is the instrument
    // confidence — "the accuracy becomes a function of the predicate,
    // semantic domain values, and the objects involved".
    for (idx, s) in survey.samples.iter().enumerate() {
        let site = format!("sounding{idx}");
        spec.assert_fuzzy_fact(
            FactPat::new("depth")
                .arg(Pat::Float((s.depth * 10.0).round() / 10.0))
                .arg(site.as_str()),
            (s.confidence * 100.0).round() / 100.0,
        )?;
    }

    // ----- §VII.B: uncertainty from extrapolation ----------------------------
    // Interpolate the depth midway between the two nearest soundings of a
    // probe point; accuracy decays with the disagreement of the samples.
    let probe = survey.samples[0].cell;
    let probe = (probe.0 + 1, probe.1);
    if let Some((a, b)) = survey.nearest_two(probe) {
        let z = (a.depth + b.depth) / 2.0;
        let disagreement = (a.depth - b.depth).abs() / (a.depth + b.depth).max(1.0);
        let accuracy = (a.confidence.min(b.confidence) * (1.0 - disagreement)).clamp(0.0, 1.0);
        spec.assert_fuzzy_fact(
            FactPat::new("depth")
                .arg(Pat::Float((z * 10.0).round() / 10.0))
                .arg("probe_site"),
            (accuracy * 100.0).round() / 100.0,
        )?;
        println!(
            "interpolated depth at probe: {z:.1} m with accuracy {accuracy:.2} \
             (from soundings {:.1} m and {:.1} m)",
            a.depth, b.depth
        );
    }

    // ----- §VII.B: statistical accuracy via card ------------------------------
    // "Picture clarity may be expressed as one minus the percentage of
    // cloud cover."
    gdp::lang::load(
        &mut spec,
        r#"
        pixel(p1). pixel(p2). pixel(p3). pixel(p4). pixel(p5).
        cloudy(p2). cloudy(p5).
        %A clarity(image) :-
            card(cloudy(P), N),
            card(pixel(P2), N0),
            A is 1 - N / N0.
        "#,
    )?;
    let clarity = spec.satisfy(&Formula::FuzzyFact(
        FactPat::new("clarity").arg("image"),
        Pat::var("A"),
    ))?;
    println!("picture clarity: {}", clarity[0].get("A").unwrap());

    // ----- §VII.C–D: thresholds and the unified operator ----------------------
    spec.declare_model("trusted");
    spec.register_meta_model(threshold_model("trust85", "trusted", 0.85));
    spec.register_meta_model(unified_fuzzy(UnifyPolicy::Max));
    spec.activate_meta_model("trust85")?;
    spec.activate_meta_model("unified_fuzzy_max")?;
    spec.set_world_view(&["omega", "trusted"])?;
    let trusted = spec.query(FactPat::new("depth").arg("Z").arg("S"))?;
    println!(
        "{} of {} depth facts exceed the 0.85 trust threshold and appear crisp \
         in the `trusted` model",
        trusted.len(),
        survey.samples.len() + 1
    );

    // ----- §VII.E: fuzzy constraints -----------------------------------------
    spec.constrain(
        Constraint::new("low_confidence_datum")
            .witness("S")
            .when(Formula::and(
                Formula::FuzzyFact(FactPat::new("depth").arg("Z").arg("S"), Pat::var("A")),
                Formula::Cmp(CmpOp::Lt, Pat::var("A"), Pat::Float(0.8)),
            )),
    )?;
    let weak = spec.check_consistency()?;
    println!("{} soundings flagged below confidence 0.8", weak.len());

    // An accuracy-qualified error: 12% of channel markers seem absent.
    spec.assert_fuzzy_fact(
        FactPat::new("error").arg("missing_marker").arg("channel7"),
        0.12,
    )?;
    for (violation, acc) in fuzzy_violations(&spec)? {
        println!("fuzzy violation {violation} with accuracy {acc}");
    }

    // ----- §VII.F: AC propagation ---------------------------------------------
    // navigable(S) :- depth(Z)(S), Z > 15  — how trustworthy is the
    // conclusion? AC = the (unified) accuracy of the premise.
    let rule = Rule::new(
        FactPat::new("navigable").arg("S"),
        Formula::and(
            Formula::fact(FactPat::new("depth").arg("Z").arg("S")),
            Formula::Cmp(CmpOp::Gt, Pat::var("Z"), Pat::Float(15.0)),
        ),
    );
    let derived = derive_accuracies(&mut spec, &rule, &AcOptions::default())?;
    println!("derived {derived} accuracy-qualified navigability conclusions");
    let navigable = spec.satisfy(&Formula::FuzzyFact(
        FactPat::new("navigable").arg("S"),
        Pat::var("A"),
    ))?;
    for answer in navigable.iter().take(5) {
        println!(
            "  %{} navigable({})",
            answer.get("A").unwrap(),
            answer.get("S").unwrap()
        );
    }

    Ok(())
}
