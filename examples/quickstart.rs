//! Quickstart: the paper's own bridge-and-road world (§II–III), written in
//! the specification language, queried, and consistency-checked.
//!
//! Run with: `cargo run -p gdp --example quickstart`

use gdp::lang::{load, query};
use gdp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = Specification::new();

    // ----- §II.B: basic facts; §III.A: virtual facts ------------------------
    let summary = load(
        &mut spec,
        r#"
        // Raw data: roads, intersections, bridges, and what we know of
        // their status (positive facts only — §II.B).
        road(s1). road(s2).
        road_intersection(s1, s2).
        bridge(b1, s1). bridge(b2, s1). bridge(b3, s2).
        open(b1). open(b2).

        // "A road is open if all bridges on that road are open."
        open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).

        // "A bridge that is not open is assumed to be closed."
        closed(X) :- bridge(X, R), not(open(X)).

        // "A bridge that is open or closed has a known status."
        known_status(X) :- bridge(X, R), (open(X) ; closed(X)).

        // §I: "any city whose population exceeds one million is a large city"
        population(2800000)(saint_louis).
        population(40000)(jefferson_city).
        large_city(X) :- population(N)(X), N > 1000000.
        "#,
    )?;
    println!("loaded {} facts, {} rules\n", summary.facts, summary.rules);

    println!("open roads:");
    for answer in query(&spec, "open_road(X)")? {
        println!("  {}", answer.get("X").unwrap());
    }

    println!("closed bridges (negation as failure — open world, §III.A):");
    for answer in query(&spec, "closed(B)")? {
        println!("  {}", answer.get("B").unwrap());
    }

    println!("large cities:");
    for answer in query(&spec, "large_city(C)")? {
        println!("  {}", answer.get("C").unwrap());
    }

    // ----- §III.C–E: constraints, models, world views -----------------------
    load(
        &mut spec,
        r#"
        // Two sources disagree about Missouri's capital; the rumor lives
        // in its own model (§III.D).
        capital_of(jefferson_city, missouri).
        rumor'capital_of(saint_louis, missouri).

        // "Each state has only one capital city" (§III.C).
        constraint two_capitals(Z) :-
            capital_of(X, Z), capital_of(Y, Z), X \= Y.
        "#,
    )?;

    let violations = spec.check_consistency()?;
    println!(
        "\nconsistency under the default world view (omega only): {} violations",
        violations.len()
    );

    // Admit the rumor model: now the constraint fires (§III.E — "a
    // constraint violation may occur in one world view but not in the
    // other").
    spec.set_world_view(&["omega", "rumor"])?;
    let violations = spec.check_consistency()?;
    println!("consistency with the rumor model admitted:");
    for v in &violations {
        println!("  {v}");
    }

    Ok(())
}
