//! Terrain mapping: synthetic terrain loaded as spatial facts, queried
//! through the spatial operators (§V), generalized to a coarser map with
//! the island-thresholding and shore-line abstraction rules (§V.D), and
//! rendered — the IP8500 demonstration, in software.
//!
//! Run with: `cargo run -p gdp --example terrain_mapping`
//! Writes `terrain_fine.ppm` / `terrain_coarse.ppm` / `terrain.svg` into
//! the working directory.

use gdp::datagen::{Terrain, TerrainConfig};
use gdp::prelude::*;
use gdp::render::{Layer, MapRenderer, Rgb};
use gdp::spatial::abstraction::{abstraction_meta_model, compose_rule, threshold_copy_rule};

fn pt(x: f64, y: f64) -> Pat {
    Pat::app("pt", vec![Pat::Float(x), Pat::Float(y)])
}

fn uniform(res: &str, x: f64, y: f64) -> SpaceQual {
    SpaceQual::AreaUniform {
        res: Pat::atom(res),
        at: pt(x, y),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- synthetic world (substitute for DMA map data) --------------------
    let terrain = Terrain::generate(TerrainConfig {
        seed: 60,
        width: 32,
        height: 32,
        feature_scale: 9.0,
        octaves: 4,
        water_level: 0.52,
        max_elevation: 1000.0,
    });
    println!(
        "terrain: {}x{} cells, {:.0}% water, {} lakes, {} islands, {} peaks",
        terrain.width(),
        terrain.height(),
        terrain.water_fraction() * 100.0,
        terrain.lakes().len(),
        terrain.islands().len(),
        terrain.peaks().len(),
    );

    // ----- specification: two logical spaces, fine refines coarse -----------
    let (mut spec, reg) = gdp::standard_spec()?;
    spec.set_budget(200_000_000, 256);
    let fine = GridResolution::square(0.0, 0.0, 1.0, terrain.width(), terrain.height());
    let coarse = GridResolution::square(0.0, 0.0, 4.0, terrain.width() / 4, terrain.height() / 4);
    reg.add_grid(&mut spec, "fine", fine)?;
    reg.add_grid(&mut spec, "coarse", coarse)?;

    // Load terrain as @u[fine] facts: cover classes, water, shores, and
    // island membership.
    let islands = terrain.islands();
    for j in 0..terrain.height() {
        for i in 0..terrain.width() {
            let (cx, cy) = (f64::from(i) + 0.5, f64::from(j) + 0.5);
            let cover = terrain.cover(i, j);
            spec.assert_fact(
                FactPat::new("cover")
                    .arg(cover.name())
                    .arg("land")
                    .space(uniform("fine", cx, cy)),
            )?;
            if terrain.is_water(i, j) {
                spec.assert_fact(
                    FactPat::new("water")
                        .arg("sea")
                        .space(uniform("fine", cx, cy)),
                )?;
            }
            if terrain.is_shore(i, j) {
                spec.assert_fact(
                    FactPat::new("shore")
                        .arg("sea")
                        .space(uniform("fine", cx, cy)),
                )?;
            }
            spec.assert_fact(
                FactPat::new("elevation")
                    .arg(Pat::Float(terrain.elevation(i, j)))
                    .arg("land")
                    .space(uniform("fine", cx, cy)),
            )?;
        }
    }
    for island in &islands {
        let name = format!("island{}", island.id);
        for &(i, j) in &island.cells {
            spec.assert_fact(FactPat::new("island").arg(name.as_str()).space(uniform(
                "fine",
                f64::from(i) + 0.5,
                f64::from(j) + 0.5,
            )))?;
        }
    }
    // Rivers are line features thinner than any patch: assert them as
    // simple point facts so only the sampled operator can see them (§V.C).
    let rivers = terrain.rivers(2);
    for (idx, river) in rivers.iter().enumerate() {
        let name = format!("river{idx}");
        for &(i, j) in river {
            spec.assert_fact(
                FactPat::new("river")
                    .arg(name.as_str())
                    .at(pt(f64::from(i) + 0.5, f64::from(j) + 0.5)),
            )?;
        }
    }
    println!(
        "loaded {} clauses ({} rivers traced)",
        spec.kb().clause_count(),
        rivers.len()
    );

    // ----- §V.C: operators at work ------------------------------------------
    // Point query through @u: what's the cover at (10.3, 20.7)?
    let answers = spec.query(
        FactPat::new("cover")
            .arg("C")
            .arg("land")
            .at(pt(10.3, 20.7)),
    )?;
    println!(
        "cover at (10.3, 20.7): {}",
        answers
            .first()
            .and_then(|a| a.get("C").cloned())
            .map(|t| t.to_string())
            .unwrap_or_else(|| "unknown".into())
    );

    // Area average through @a: mean elevation of a coarse patch.
    let answers = spec.query(FactPat::new("elevation").arg("Z").arg("land").space(
        SpaceQual::AreaAveraged {
            res: Pat::atom("coarse"),
            at: pt(2.0, 2.0),
        },
    ))?;
    if let Some(z) = answers
        .first()
        .and_then(|a| a.get("Z").and_then(Term::as_f64))
    {
        println!("average elevation of coarse patch (2,2): {z:.1} m");
    }

    // ----- rendering (the IP8500 stand-in) -----------------------------------
    // The source map renders *before* the generalization meta-model is
    // activated: once active, a fine-grid island query also explores the
    // derived coarse island patches (and each derivation re-counts island
    // sizes), which is semantically sound but turns every fine-map miss
    // into a size computation.
    let fine_map = MapRenderer::new("fine")
        .layer(
            Layer::uniform("cover", '^', Rgb(130, 130, 140))
                .with_args(vec![Pat::atom("alpine"), Pat::atom("land")]),
        )
        .layer(
            Layer::uniform("cover", 'T', Rgb(34, 120, 50))
                .with_args(vec![Pat::atom("forest"), Pat::atom("land")]),
        )
        .layer(
            Layer::uniform("cover", 'm', Rgb(110, 140, 70))
                .with_args(vec![Pat::atom("marsh"), Pat::atom("land")]),
        )
        .layer(Layer::uniform("water", '~', Rgb(40, 80, 180)))
        .layer(Layer::uniform("island", 'o', Rgb(220, 180, 80)))
        .layer(Layer::sampled("river", 'r', Rgb(90, 160, 255)));
    println!(
        "\nfine map (32x32):\n{}",
        fine_map.render_ascii(&spec, &reg)?
    );
    // One frame evaluation serves both raster formats.
    let fine_frame = fine_map.render_frame(&spec, &reg)?;
    std::fs::write("terrain_fine.ppm", fine_frame.to_ppm())?;
    std::fs::write("terrain.svg", fine_frame.to_svg(12))?;

    // ----- §V.D: map generalization ------------------------------------------
    // Islands survive only if they cover > 2 fine patches; lake+shore
    // compose into a coarse shore_line.
    spec.register_meta_model(abstraction_meta_model(
        "map_generalization",
        vec![
            threshold_copy_rule("island", "fine", "coarse", 2),
            compose_rule("water", "shore", "shore_line", "fine", "coarse"),
        ],
    ));
    spec.activate_meta_model("map_generalization")?;

    let mut kept = 0;
    for island in &islands {
        let name = format!("island{}", island.id);
        let (i, j) = island.cells[0];
        let rep = coarse
            .map(Point::new(f64::from(i) + 0.5, f64::from(j) + 0.5))
            .expect("island cell inside extent");
        let visible = spec.provable(
            FactPat::new("island")
                .arg(name.as_str())
                .space(uniform("coarse", rep.x, rep.y)),
        )?;
        if visible {
            kept += 1;
        }
        println!(
            "  island{} ({} patches) -> {} on the coarse map",
            island.id,
            island.cells.len(),
            if visible { "kept" } else { "dropped" }
        );
    }
    println!("{kept}/{} islands survive generalization", islands.len());

    let coarse_map = MapRenderer::new("coarse")
        .layer(Layer::sampled("water", '~', Rgb(40, 80, 180)))
        .layer(Layer::uniform("shore_line", '#', Rgb(240, 220, 100)))
        .layer(Layer::uniform("island", 'o', Rgb(220, 180, 80)));
    println!(
        "coarse map (8x8) after generalization:\n{}",
        coarse_map.render_ascii(&spec, &reg)?
    );
    std::fs::write(
        "terrain_coarse.ppm",
        coarse_map.render_frame(&spec, &reg)?.to_ppm(),
    )?;
    println!("wrote terrain_fine.ppm, terrain_coarse.ppm, terrain.svg");

    Ok(())
}
