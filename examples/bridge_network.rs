//! Bridge network: a generated road network loaded as facts, the paper's
//! `open_road` logic at scale, bridge histories under the continuity
//! assumption (§VI.B), and world views separating planning assumptions
//! from field reports (§III.D–E).
//!
//! Run with: `cargo run -p gdp --example bridge_network`

use gdp::datagen::{Network, NetworkConfig, Terrain, TerrainConfig};
use gdp::prelude::*;

fn at_year(y: i64) -> TimeQual {
    TimeQual::At(Pat::Int(y))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let terrain = Terrain::generate(TerrainConfig {
        seed: 7,
        water_level: 0.5,
        ..TerrainConfig::default()
    });
    let network = Network::generate(&terrain, NetworkConfig::default());
    println!(
        "network: {} cities, {} roads, {} bridges",
        network.cities.len(),
        network.roads.len(),
        network.bridge_count()
    );

    let (mut spec, _reg) = gdp::standard_spec()?;

    // ----- load the network as basic facts ----------------------------------
    spec.declare_predicate("road", vec![Sort::Object])?;
    spec.declare_predicate("bridge", vec![Sort::Object, Sort::Object])?;
    for city in &network.cities {
        let name = format!("city{}", city.id);
        spec.assert_fact(
            FactPat::new("population")
                .arg(Pat::Int(i64::from(city.population)))
                .arg(name.as_str()),
        )?;
    }
    for road in &network.roads {
        let rname = format!("road{}", road.id);
        spec.assert_fact(FactPat::new("road").arg(rname.as_str()))?;
        spec.assert_fact(
            FactPat::new("connects")
                .arg(rname.as_str())
                .arg(format!("city{}", road.cities.0).as_str())
                .arg(format!("city{}", road.cities.1).as_str()),
        )?;
        for bridge in &road.bridges {
            let bname = format!("bridge{}", bridge.id);
            spec.assert_fact(
                FactPat::new("bridge")
                    .arg(bname.as_str())
                    .arg(rname.as_str()),
            )?;
            if bridge.open {
                spec.assert_fact(FactPat::new("open").arg(bname.as_str()))?;
            }
        }
    }

    // ----- the paper's §III.A rules ------------------------------------------
    gdp::lang::load(
        &mut spec,
        r#"
        open_road(X) :- road(X), forall(bridge(Y, X), open(Y)).
        closed(X) :- bridge(X, R), not(open(X)).
        reachable(A, B) :- connects(R, A, B), open_road(R).
        reachable(A, B) :- connects(R, B, A), open_road(R).
        "#,
    )?;

    let open_roads = spec.query(FactPat::new("open_road").arg("R"))?;
    let closed_bridges = spec.query(FactPat::new("closed").arg("B"))?;
    println!(
        "{} of {} roads fully open; {} bridges presumed closed",
        open_roads.len(),
        network.roads.len(),
        closed_bridges.len()
    );
    let reachable = spec.query(FactPat::new("reachable").arg("city0").arg("B"))?;
    println!(
        "city0 directly reaches: {:?}",
        reachable
            .iter()
            .map(|a| a.get("B").unwrap().to_string())
            .collect::<Vec<_>>()
    );

    // ----- §VI: bridge history under the continuity assumption ---------------
    spec.activate_meta_model("continuity_assumption")?;
    gdp::lang::load(
        &mut spec,
        r#"
        & 1970 status(open)(bridge0).
        & 1978 status(repairs)(bridge0).
        & 1981 status(open)(bridge0).
        "#,
    )?;
    for year in [1974, 1979, 1985] {
        let open_then = spec.provable(
            FactPat::new("status")
                .arg("open")
                .arg("bridge0")
                .time(at_year(year)),
        )?;
        let repairs_then = spec.provable(
            FactPat::new("status")
                .arg("repairs")
                .arg("bridge0")
                .time(at_year(year)),
        )?;
        println!(
            "bridge0 in {year}: open={open_then} repairs={repairs_then} \
             (value persists until the next conflicting assertion)"
        );
    }

    // past/present/future (§VI.B): the year is 1990.
    spec.set_now(1990.0);
    let past = spec.prove_goal(Term::pred("past", vec![Term::int(1971)]))?;
    let future = spec.prove_goal(Term::pred("future", vec![Term::int(1971)]))?;
    println!("with now=1990: past(1971)={past}, future(1971)={future}");

    // ----- §III.D–E: planning vs field models --------------------------------
    // Planners assume bridge1 is open; a field report says otherwise.
    spec.declare_model("planning");
    spec.declare_model("field_report");
    spec.assert_fact(FactPat::new("open").arg("bridge1").model("planning"))?;
    spec.assert_fact(FactPat::new("damaged").arg("bridge1").model("field_report"))?;
    spec.constrain(
        Constraint::new("open_but_damaged")
            .witness("B")
            .when(Formula::and(
                Formula::fact(FactPat::new("open").arg("B")),
                Formula::fact(FactPat::new("damaged").arg("B")),
            )),
    )?;
    for view in [
        vec!["omega", "planning"],
        vec!["omega", "field_report"],
        vec!["omega", "planning", "field_report"],
    ] {
        spec.set_world_view(&view)?;
        let violations = spec.check_consistency()?;
        println!("world view {view:?}: {} violations", violations.len());
    }

    Ok(())
}
