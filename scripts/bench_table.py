#!/usr/bin/env python3
"""Extract Criterion median estimates from a `cargo bench` log into the
markdown table EXPERIMENTS.md embeds.

Usage: python3 scripts/bench_table.py bench_output.txt
"""
import re
import sys
from collections import OrderedDict


def main(path: str) -> None:
    # Short names:  B1_x/100    time: [lo med hi]
    # Long names wrap: the name prints on its own line, `time:` on the next.
    inline = re.compile(r"^(\S+?)\s+time:\s+\[\S+ \S+ ([0-9.]+) (\S+)")
    bare_time = re.compile(r"^\s+time:\s+\[\S+ \S+ ([0-9.]+) (\S+)")
    name_line = re.compile(r"^([A-Za-z0-9_]+/\S+)\s*$")
    rows = OrderedDict()
    last_name = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = inline.match(line)
            if m:
                rows[m.group(1)] = (float(m.group(2)), m.group(3).rstrip("]"))
                last_name = None
                continue
            m = name_line.match(line)
            if m:
                last_name = m.group(1)
                continue
            m = bare_time.match(line)
            if m and last_name:
                rows[last_name] = (float(m.group(1)), m.group(2).rstrip("]"))
                last_name = None
    groups = OrderedDict()
    for name, (med, unit) in rows.items():
        group, _, param = name.partition("/")
        groups.setdefault(group, []).append((param or "-", med, unit))
    print("| benchmark | parameter | median |")
    print("|-----------|-----------|--------|")
    for group in sorted(groups, key=bench_sort_key):
        for param, med, unit in groups[group]:
            print(f"| {group} | {param} | {med:g} {unit} |")


def bench_sort_key(name: str):
    m = re.match(r"B(\d+)", name)
    return (int(m.group(1)) if m else 99, name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
