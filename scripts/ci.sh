#!/usr/bin/env bash
# The checks enforced before merge (see CONTRIBUTING.md): formatting,
# lint-free clippy, a release build, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --release --workspace

echo "ci: all checks passed"
