#!/usr/bin/env bash
# The checks enforced before merge (see CONTRIBUTING.md): formatting,
# lint-free clippy, a release build, and the full test suite — the latter
# run across the tabling × test-concurrency matrix, because answer tabling
# (GDP_TABLING) and the parallel audit layer must not change observable
# behaviour under either knob.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

# GDP_TABLING: unset = solver default (off), on = nominated predicates,
# all = every user predicate. RUST_TEST_THREADS=1 serializes the test
# binaries themselves — shaking out any test-order or shared-state
# assumptions the default parallel test runner would mask (and vice
# versa). The unset/default cell is the tier-1 configuration.
for tabling in unset on all; do
    for test_threads in default 1; do
        env_args=()
        label="tabling=$tabling"
        if [ "$tabling" != unset ]; then
            env_args+=("GDP_TABLING=$tabling")
        fi
        if [ "$test_threads" != default ]; then
            env_args+=("RUST_TEST_THREADS=$test_threads")
        fi
        echo "==> cargo test [$label, test-threads=$test_threads]"
        env "${env_args[@]}" cargo test -q --release --workspace
    done
done

# Observability legs: GDP_TRACE/GDP_PROFILE route every Specification
# query through the observed solver path, so the whole suite doubles as
# an equivalence check that tracing and profiling never change answers.
echo "==> cargo test [trace=1]"
env GDP_TRACE=1 cargo test -q --release --workspace
echo "==> cargo test [profile=1, tabling=on]"
env GDP_PROFILE=1 GDP_TABLING=on cargo test -q --release --workspace

# Indexing legs: GDP_INDEX=off disables hash and range candidate
# selection in every constructed Specification, so the whole suite
# doubles as an equivalence check that indexing never changes answers —
# crossed with tabling because the answer table consumes the same
# (indexed) enumeration order, and with GDP_CHAOS below so faults also
# land on unindexed scans. The dedicated equivalence suite additionally
# runs indexed-vs-unindexed twins in one process across a 1/4-worker,
# tabling on/off grid.
for tabling in unset on; do
    env_args=("GDP_INDEX=off")
    label="tabling=$tabling"
    if [ "$tabling" != unset ]; then
        env_args+=("GDP_TABLING=$tabling")
    fi
    echo "==> cargo test [GDP_INDEX=off, $label]"
    env "${env_args[@]}" cargo test -q --release --workspace
done
echo "==> cargo test index_equivalence [GDP_INDEX=off]"
env GDP_INDEX=off cargo test -q --release -p gdp --test index_equivalence

# SLG legs: the recursive-tabling suite (answer forest, fixpoint
# saturation, cycle policies, fault containment) re-run with tabling
# forced on for every user predicate and again on unindexed scans —
# recursive saturation consumes whatever enumeration order candidate
# selection produces, so the fixpoint must be order-independent.
for index in unset off; do
    env_args=("GDP_TABLING=all")
    if [ "$index" != unset ]; then
        env_args+=("GDP_INDEX=$index")
    fi
    echo "==> cargo test slg_equivalence [GDP_TABLING=all, index=$index]"
    env "${env_args[@]}" cargo test -q --release -p gdp --test slg_equivalence
done

# Chaos legs: GDP_CHAOS injects a deterministic fault (cancel / deadline
# / panic at a seed-derived port event) into every audit the harness's
# ambient-env test runs, which then asserts the degraded report is the
# fault-free audit restricted to the members that completed. Only the
# chaos harness runs here — it builds its own fault-free baselines; the
# rest of the suite asserts fault-free answers and is exercised by the
# matrix above. Seeds cover all three fault kinds (seed % 3) at scattered
# event depths, crossed with tabling off/on so faults also land on
# answer-table traffic.
for seed in 0 1 2 100 101 102 997; do
    for tabling in unset on; do
        env_args=("GDP_CHAOS=$seed")
        if [ "$tabling" != unset ]; then
            env_args+=("GDP_TABLING=$tabling")
        fi
        echo "==> cargo test chaos_harness [GDP_CHAOS=$seed, tabling=$tabling]"
        env "${env_args[@]}" cargo test -q --release -p gdp --test chaos_harness
    done
done

# Incremental legs: the delta-driven audit must match a full re-audit
# byte-for-byte. The equivalence suite runs its own 1/4-worker grid and
# flips tabling per proptest case; the env matrix here layers the
# GDP_INCREMENTAL hook (arming the member cache in every constructed
# Specification) over the tabling knob. The final seed run points chaos
# injection at `audit_incremental` itself: the degraded incremental report
# must restrict the fault-free audit exactly like the full audit's does.
for tabling in unset on; do
    env_args=("GDP_INCREMENTAL=1")
    label="tabling=$tabling"
    if [ "$tabling" != unset ]; then
        env_args+=("GDP_TABLING=$tabling")
    fi
    echo "==> cargo test incremental_equivalence [GDP_INCREMENTAL=1, $label]"
    env "${env_args[@]}" cargo test -q --release -p gdp --test incremental_equivalence
done
for seed in 2 101; do
    echo "==> cargo test chaos incremental [GDP_CHAOS=$seed]"
    env "GDP_CHAOS=$seed" cargo test -q --release -p gdp --test chaos_harness \
        ambient_env_chaos_restriction_holds_incrementally
done

# Chaos × unindexed: faults injected while every call scans all clauses —
# the degraded-report restriction must hold on the slow path too.
for seed in 2 101; do
    echo "==> cargo test chaos unindexed [GDP_CHAOS=$seed, GDP_INDEX=off]"
    env "GDP_CHAOS=$seed" "GDP_INDEX=off" cargo test -q --release -p gdp --test chaos_harness
done

# Deadline smoke: a divergent audit member under an effectively unbounded
# step budget must be ended by the wall-clock deadline, quickly.
echo "==> deadline smoke test"
cargo test -q --release -p gdp --test chaos_harness deadline_bounds_a_divergent_audit_member

# Serving legs: the socket server drives N=4 concurrent reader sessions,
# each pinned to a different commit, against one writer streaming further
# commits over real TCP — every reader's answers must stay byte-identical
# to its sequential baseline. The store-level twin (snapshot_isolation)
# proves the same equivalence without sockets, crossed with tabling
# because pinned readers must surface snapshot table hits, not recompute.
echo "==> cargo test server_smoke"
cargo test -q --release -p gdp --test server_smoke
for tabling in unset on; do
    env_args=()
    if [ "$tabling" != unset ]; then
        env_args+=("GDP_TABLING=$tabling")
    fi
    echo "==> cargo test snapshot_isolation [tabling=$tabling]"
    env "${env_args[@]}" cargo test -q --release -p gdp --test snapshot_isolation
done

# Durability legs: crash-at-every-commit-boundary recovery over the
# DeltaOp write-ahead log, re-seeded through GDP_CHAOS (its leading
# integer steers the op stream) and crossed with tabling — recovery must
# neither depend on nor corrupt tabled state. The merge∘replay property
# suite rides along: merged committed deltas replayed onto a fresh base
# must equal direct application even with rollbacks between the commits.
for seed in unset 7 1986; do
    for tabling in unset on; do
        env_args=()
        if [ "$seed" != unset ]; then
            env_args+=("GDP_CHAOS=$seed")
        fi
        if [ "$tabling" != unset ]; then
            env_args+=("GDP_TABLING=$tabling")
        fi
        echo "==> cargo test wal_recovery [seed=$seed, tabling=$tabling]"
        env "${env_args[@]}" cargo test -q --release -p gdp --test wal_recovery
    done
done
echo "==> cargo test delta_merge_prop"
cargo test -q --release -p gdp --test delta_merge_prop

# Checkpointed-recovery legs: crash-safe checkpoints × injected disk
# faults × tabling. The in-file sweeps always run; a GDP_CHAOS io:
# value additionally arms a ChaosFile fault under every WAL and
# checkpoint write in the env-driven case (io:short/fsync/crash at a
# byte-or-sync trigger, io:SEED for a derived point). Crossed with
# tabling because recovery must neither depend on nor corrupt tabled
# state.
for chaos in unset io:short:31 io:fsync:2 io:crash:77 io:1986; do
    for tabling in unset on; do
        env_args=()
        if [ "$chaos" != unset ]; then
            env_args+=("GDP_CHAOS=$chaos")
        fi
        if [ "$tabling" != unset ]; then
            env_args+=("GDP_TABLING=$tabling")
        fi
        echo "==> cargo test checkpoint_recovery+io_faults [chaos=$chaos, tabling=$tabling]"
        env "${env_args[@]}" cargo test -q --release -p gdp \
            --test checkpoint_recovery --test io_faults
    done
done

# Hardened-serving legs: admission control turns extras away cleanly,
# idle sessions are reaped, lost connections tear down only their own
# session, and the drain smoke — the real gdp-serve binary SIGTERMed
# under four concurrent committing sessions — must exit 0 with a final
# checkpoint from which every acknowledged commit recovers.
echo "==> cargo test server_hardening (incl. SIGTERM drain smoke)"
cargo test -q --release -p gdp --test server_hardening

echo "ci: all checks passed"
